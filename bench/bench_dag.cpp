// M4 — voting-DAG machinery costs: construction (per node), the
// coalescing payoff vs the 3^T naive bound, sprinkling, the ternary
// transform, colouring, and COBRA steps.
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/initializer.hpp"
#include "graph/samplers.hpp"
#include "votingdag/cobra.hpp"
#include "votingdag/coloring.hpp"
#include "votingdag/sprinkling.hpp"
#include "votingdag/ternary.hpp"

namespace {

using namespace b3v;

void BM_DagBuild(benchmark::State& state) {
  const auto n = static_cast<graph::VertexId>(1 << 16);
  const auto sampler = graph::CirculantSampler::dense(n, 1024);
  const int T = static_cast<int>(state.range(0));
  std::uint64_t seed = 0;
  std::size_t nodes = 0;
  for (auto _ : state) {
    const auto dag = votingdag::build_voting_dag(sampler, 0, T, ++seed);
    nodes = dag.total_nodes();
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["naive_3^T"] = std::pow(3.0, T);
}
BENCHMARK(BM_DagBuild)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_Sprinkle(benchmark::State& state) {
  const auto sampler = graph::CirculantSampler::dense(1 << 16, 1024);
  const int T = static_cast<int>(state.range(0));
  const auto dag = votingdag::build_voting_dag(sampler, 0, T, 7);
  for (auto _ : state) {
    const auto sprinkled = votingdag::sprinkle(dag, T);
    benchmark::DoNotOptimize(sprinkled.total_redirects());
  }
}
BENCHMARK(BM_Sprinkle)->Arg(6)->Arg(8);

void BM_ColorDag(benchmark::State& state) {
  const auto sampler = graph::CirculantSampler::dense(1 << 16, 1024);
  const int T = static_cast<int>(state.range(0));
  const auto dag = votingdag::build_voting_dag(sampler, 0, T, 7);
  const core::Opinions leaves =
      core::iid_bernoulli(dag.level(0).size(), 0.4, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(votingdag::color_dag(dag, leaves).root());
  }
}
BENCHMARK(BM_ColorDag)->Arg(6)->Arg(8);

void BM_TernaryTransform(benchmark::State& state) {
  const auto sampler = graph::CirculantSampler::dense(1 << 16, 1024);
  const int T = static_cast<int>(state.range(0));
  const auto dag = votingdag::build_voting_dag(sampler, 0, T, 7);
  const core::Opinions leaves =
      core::iid_bernoulli(dag.level(0).size(), 0.4, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(votingdag::ternary_transform(dag, leaves).color);
  }
}
BENCHMARK(BM_TernaryTransform)->Arg(6)->Arg(8);

void BM_CobraStep(benchmark::State& state) {
  const auto sampler = graph::CirculantSampler::dense(1 << 16, 1024);
  // Steady-state-ish occupied set: run a few steps first.
  std::vector<graph::VertexId> occupied{0};
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    occupied = votingdag::cobra_step(sampler, occupied, 3, 11, i);
  }
  std::uint64_t key = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        votingdag::cobra_step(sampler, occupied, 3, 11, ++key));
  }
  state.counters["occupied"] = static_cast<double>(occupied.size());
}
BENCHMARK(BM_CobraStep)->Arg(4)->Arg(8);

}  // namespace

// main() is provided by bench_main.cpp (adds B3V_BENCH_JSON_DIR support).
