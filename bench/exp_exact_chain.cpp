// E12 — exact-vs-simulated validation on K_n.
//
// The blue count on the complete graph is a (n+1)-state Markov chain
// (src/theory/exact_chain); this binary compares the Monte-Carlo
// simulator against the EXACT blue-win probabilities and expected
// consensus times, and prints the exact finite-n consensus-time profile
// that Theorem 1's asymptotics describe.
#include <cmath>
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/engine.hpp"
#include "core/initializer.hpp"
#include "experiments/session.hpp"
#include "experiments/sweep.hpp"
#include "graph/samplers.hpp"
#include "rng/splitmix64.hpp"
#include "theory/exact_chain.hpp"

int main(int argc, char** argv) {
  using namespace b3v;
  experiments::Session session(argc, argv, "exp_exact_chain");
  const auto& ctx = session.config();
  auto& pool = session.pool();
  std::cout << "E12: exact Markov-chain ground truth vs the simulator (K_n)\n\n";

  // --- Part 1: simulator vs exact. The chain is O(n^2) states x time,
  // so n scales but stays modest; B_0 rows are fractions of n rather
  // than the old fixed counts (which assumed n = 256 exactly). ---
  const auto n = static_cast<std::uint32_t>(ctx.scaled(256, 64));
  const theory::ExactCompleteChain chain(n, 3);
  const auto& win = chain.blue_win_probability();
  const auto& time = chain.expected_absorption_time();
  const graph::CompleteSampler sampler(n);
  const std::size_t reps = ctx.rep_count(400);

  analysis::Table table(
      "E12 exact vs simulated, K_" + std::to_string(n) + ", Best-of-3, " +
          std::to_string(reps) + " sims/row (sim = per-vertex engine, "
          "cs = count-space engine)",
      {"B_0", "exact_P(blue wins)", "sim_P(blue wins)", "cs_P(blue wins)",
       "exact_E[rounds]", "sim_mean_rounds", "cs_mean_rounds",
       "P_diff_sigmas", "cs_diff_sigmas"});
  for (const double frac : {0.125, 0.375, 0.4375, 0.5, 0.5625, 0.625, 0.875}) {
    const auto b0 = static_cast<std::uint32_t>(frac * n);
    std::uint64_t blue_wins = 0, cs_blue_wins = 0;
    analysis::OnlineStats rounds, cs_rounds;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      core::RunSpec spec;
      spec.protocol = core::best_of(3);
      spec.seed = rng::derive_stream(ctx.base_seed, b0 * 100000 + rep);
      spec.max_rounds = 10000;
      spec.memory_policy = ctx.memory_policy;
      const auto result = core::run(
          sampler,
          core::exact_count(n, b0, rng::derive_stream(spec.seed, 0xC0)),
          spec, pool);
      if (result.consensus) {
        rounds.add(static_cast<double>(result.rounds));
        blue_wins += result.winner == core::Opinion::kBlue;
      }
      // The count-space backend rides the same chain: same initial blue
      // count, disjoint seed stream (its draws are per-cell, not
      // per-vertex, so the trajectories are independent replicates).
      core::RunSpec cs_spec = spec;
      cs_spec.seed = rng::derive_stream(spec.seed, 0xC5);
      cs_spec.state_space = core::StateSpace::kCounts;
      const auto cs_result = core::run(
          sampler,
          core::exact_count(n, b0, rng::derive_stream(spec.seed, 0xC0)),
          cs_spec, pool);
      if (cs_result.consensus) {
        cs_rounds.add(static_cast<double>(cs_result.rounds));
        cs_blue_wins += cs_result.winner == core::Opinion::kBlue;
      }
    }
    const double sim_p = static_cast<double>(blue_wins) / static_cast<double>(reps);
    const double cs_p =
        static_cast<double>(cs_blue_wins) / static_cast<double>(reps);
    const double sigma =
        std::sqrt(std::max(1e-12, win[b0] * (1 - win[b0]) /
                                      static_cast<double>(reps)));
    table.add_row({static_cast<std::int64_t>(b0), win[b0], sim_p, cs_p,
                   time[b0], rounds.mean(), cs_rounds.mean(),
                   std::abs(sim_p - win[b0]) / sigma,
                   std::abs(cs_p - win[b0]) / sigma});
  }
  session.emit(table);

  // --- Part 2: exact consensus-time profile across n. ---
  analysis::Table profile(
      "E12b exact E[rounds] from B_0 = (1/2 - 0.1) n, Best-of-3 vs k",
      {"n", "k=3", "k=5", "k=2 keep-own", "log2log2(n)"});
  for (const std::size_t nn : experiments::size_grid(ctx, 64, 1024, 32)) {
    const auto b0 = static_cast<std::uint32_t>(0.4 * static_cast<double>(nn));
    const auto nu = static_cast<std::uint32_t>(nn);
    const theory::ExactCompleteChain c3(nu, 3);
    const theory::ExactCompleteChain c5(nu, 5);
    const theory::ExactCompleteChain c2(nu, 2, core::TieRule::kKeepOwn);
    profile.add_row({static_cast<std::int64_t>(nn),
                     c3.expected_absorption_time()[b0],
                     c5.expected_absorption_time()[b0],
                     c2.expected_absorption_time()[b0],
                     std::log2(std::log2(static_cast<double>(nn)))});
  }
  session.emit(profile);
  std::cout
      << "Expected shape: the simulated win probabilities sit within ~2-3\n"
      << "sigma of the exact chain (validating the Philox-keyed kernel end\n"
      << "to end), exact E[rounds] grows like log log n + constant, and the\n"
      << "k=2 keep-own column tracks k=3 (identical mean-field drift).\n";
  return session.finish();
}
