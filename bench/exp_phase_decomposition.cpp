// E10 — Lemma 4's three-phase trajectory, measured.
//
// The proof decomposes the collapse of the blue probability into
//   phase 3 (T3 = O(log 1/delta)): delta_t grows by >= 5/4 per step
//            until delta_t >= 1/(2 sqrt 3)  [blue fraction <= ~0.211];
//   phase 2 (T2 = O(log log d)): quadratic collapse p_t <= 4 p_{t-1}^2
//            until p_t = polylog(d)/d;
//   phase 1 (h1 = a log log d + 1 levels): squeeze to o(1/d).
// We segment measured complete-graph trajectories at the same
// boundaries and compare the per-phase step counts with the numeric
// Lemma 4 bookkeeping.
#include <cmath>
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/engine.hpp"
#include "core/initializer.hpp"
#include "experiments/runner.hpp"
#include "experiments/session.hpp"
#include "graph/samplers.hpp"
#include "rng/splitmix64.hpp"
#include "rng/streams.hpp"
#include "theory/recursions.hpp"

namespace {

constexpr double kPhase3Boundary = 0.5 - 0.28867513459481287;  // ~0.2113

struct MeasuredPhases {
  int t3 = 0;  // rounds with blue fraction > kPhase3Boundary
  int t2 = 0;  // rounds from boundary down to polylog(d)/d
  int t1 = 0;  // remaining rounds to consensus
};

MeasuredPhases segment(const std::vector<std::uint64_t>& traj, std::size_t n,
                       double d) {
  MeasuredPhases out;
  const double p2_boundary =
      std::pow(std::log2(d), 2) / d;  // concrete polylog(d)/d
  std::size_t t = 0;
  while (t < traj.size() &&
         static_cast<double>(traj[t]) / static_cast<double>(n) > kPhase3Boundary) {
    ++t;
  }
  out.t3 = static_cast<int>(t);
  while (t < traj.size() &&
         static_cast<double>(traj[t]) / static_cast<double>(n) > p2_boundary) {
    ++t;
  }
  out.t2 = static_cast<int>(t) - out.t3;
  out.t1 = static_cast<int>(traj.size()) - 1 - out.t3 - out.t2;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace b3v;
  experiments::Session session(argc, argv, "exp_phase_decomposition");
  const auto& ctx = session.config();
  auto& pool = session.pool();
  std::cout << "E10: Lemma 4 phase decomposition — measured vs bookkeeping\n\n";

  const auto n = static_cast<graph::VertexId>(ctx.scaled(1 << 18));
  const double d = std::sqrt(static_cast<double>(n));  // alpha = 1/2 reference
  const graph::CompleteSampler sampler(n);
  const std::size_t reps = ctx.rep_count(10);

  analysis::Table table(
      "E10 measured phase lengths on K_n (n=" + std::to_string(n) +
          ", boundaries at blue<=0.2113 and blue<=log^2(d)/d with d=sqrt(n))",
      {"delta", "meas_T3", "meas_T2", "meas_T1", "meas_total", "lemma4_T3",
       "lemma4_T2", "lemma4_h1", "lemma4_total"});

  for (const double delta : {0.2, 0.1, 0.05, 0.01, 0.002}) {
    analysis::OnlineStats t3s, t2s, t1s, totals;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      core::RunSpec spec;
      spec.protocol = core::best_of(3);
      spec.seed = rng::derive_stream(
          ctx.base_seed,
          rep * 1000 + static_cast<std::uint64_t>(delta * 1e5));
      spec.max_rounds = 500;
      const auto result = experiments::run_recorded(
          sampler,
          core::iid_bernoulli(n, 0.5 - delta,
                              rng::derive_stream(spec.seed, rng::kStreamInitialPlacement)),
          spec, pool);
      if (!result.consensus) continue;
      const auto phases = segment(result.blue_trajectory, n, d);
      t3s.add(phases.t3);
      t2s.add(phases.t2);
      t1s.add(phases.t1);
      totals.add(static_cast<double>(result.rounds));
    }
    const auto predicted = theory::lemma4_phases(d, delta);
    table.add_row({delta, t3s.mean(), t2s.mean(), t1s.mean(), totals.mean(),
                   static_cast<std::int64_t>(predicted.t3),
                   static_cast<std::int64_t>(predicted.t2),
                   static_cast<std::int64_t>(predicted.h1),
                   static_cast<std::int64_t>(predicted.total)});
  }
  session.emit(table);
  std::cout
      << "Expected shape: measured T3 grows with log(1/delta) and tracks the\n"
      << "bookkeeping's T3 within small constants (the proof's 5/4 growth\n"
      << "factor is pessimistic versus the true ~3/2 drift); T2 and the tail\n"
      << "are O(log log) and essentially flat across delta.\n";
  return session.finish();
}
