// M5 — parallel scaling of the simulation kernel: one Best-of-3 round
// on a fixed instance across worker counts (the strong-scaling curve of
// the shared-memory design; see DESIGN.md ablations).
#include <benchmark/benchmark.h>

#include "core/dynamics.hpp"
#include "core/initializer.hpp"
#include "graph/samplers.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace b3v;

void BM_StrongScaling_Complete(benchmark::State& state) {
  const graph::CompleteSampler sampler(1 << 20);
  parallel::ThreadPool pool(static_cast<unsigned>(state.range(0)));
  const core::Opinions init = core::iid_bernoulli(1 << 20, 0.4, 1);
  core::Opinions next(1 << 20);
  std::uint64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::step_best_of_k(
        sampler, init, next, 3, core::TieRule::kRandom, 9, round++, pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (1 << 20));
}
BENCHMARK(BM_StrongScaling_Complete)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->UseRealTime();

void BM_ParallelReduce_Sum(benchmark::State& state) {
  parallel::ThreadPool pool(static_cast<unsigned>(state.range(0)));
  std::vector<std::uint64_t> data(1 << 22);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = i;
  for (auto _ : state) {
    const auto total = pool.parallel_reduce<std::uint64_t>(
        0, data.size(), 1 << 14, 0,
        [&](std::size_t lo, std::size_t hi) {
          std::uint64_t acc = 0;
          for (std::size_t i = lo; i < hi; ++i) acc += data[i];
          return acc;
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_ParallelReduce_Sum)->Arg(1)->Arg(4)->Arg(16)->UseRealTime();

}  // namespace

// main() is provided by bench_main.cpp (adds B3V_BENCH_JSON_DIR support).
