// E8 — Remark 2: the voting-DAG is the trajectory of a k=3 COBRA walk.
//
// Two checks:
//   (a) structural: with matching RNG keys the DAG's level vertex sets
//       ARE the walk's occupied sets (exact equality, every level);
//   (b) distributional: with independent seeds, mean level sizes match
//       mean occupancy profiles.
// Also reports COBRA cover times on dense graphs (the object of
// [3],[6],[9]).
#include <cmath>
#include <iostream>
#include <set>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "experiments/session.hpp"
#include "experiments/sweep.hpp"
#include "graph/samplers.hpp"
#include "rng/splitmix64.hpp"
#include "votingdag/cobra.hpp"
#include "votingdag/dag.hpp"

int main(int argc, char** argv) {
  using namespace b3v;
  experiments::Session session(argc, argv, "exp_cobra_duality");
  const auto& ctx = session.config();
  std::cout << "E8: COBRA walk duality (Remark 2)\n\n";

  const auto n = static_cast<graph::VertexId>(ctx.scaled(1 << 14));
  // Dense reference degree n^(9/14): exactly the seed's d = 512 at the
  // unscaled n = 16384, snapped to feasibility at other scales.
  const std::uint32_t d = experiments::snap_degree(
      experiments::GraphFamily::kCirculant, n,
      static_cast<std::uint32_t>(
          std::lround(std::pow(static_cast<double>(n), 9.0 / 14.0))));
  const auto sampler = graph::CirculantSampler::dense(n, d);
  const int T = 8;

  // (a) exact structural identity.
  std::size_t exact_matches = 0;
  const std::size_t structural_reps = ctx.rep_count(20);
  for (std::size_t rep = 0; rep < structural_reps; ++rep) {
    const std::uint64_t seed = rng::derive_stream(ctx.base_seed, 4000 + rep);
    const auto dag = votingdag::build_voting_dag(sampler, 0, T, seed);
    std::vector<graph::VertexId> occupied{0};
    bool all_equal = true;
    for (int tau = 0; tau <= T; ++tau) {
      std::set<graph::VertexId> level_set;
      for (const auto& node : dag.level(T - tau)) level_set.insert(node.vertex);
      all_equal &= level_set == std::set<graph::VertexId>(occupied.begin(),
                                                          occupied.end());
      if (tau < T) {
        occupied = votingdag::cobra_step(
            sampler, occupied, 3, seed, static_cast<std::uint64_t>(T - 1 - tau));
      }
    }
    exact_matches += all_equal ? 1 : 0;
  }
  std::cout << "(a) structural identity: DAG levels == COBRA occupied sets in "
            << exact_matches << "/" << structural_reps
            << " runs (must be all)\n\n";

  // (b) distributional occupancy profile.
  analysis::Table table("E8 occupancy growth: DAG level sizes vs COBRA walk, "
                        "n=" + std::to_string(n) + " d=" + std::to_string(d),
                        {"step", "dag_mean_width", "cobra_mean_occupancy",
                         "ratio", "3^step_cap"});
  const std::size_t reps = ctx.rep_count(30);
  std::vector<analysis::OnlineStats> dag_width(T + 1), walk_occ(T + 1);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto dag = votingdag::build_voting_dag(
        sampler, 0, T, rng::derive_stream(ctx.base_seed, 100 + rep));
    for (int tau = 0; tau <= T; ++tau) {
      dag_width[tau].add(static_cast<double>(dag.level(T - tau).size()));
    }
    const auto walk = votingdag::run_cobra(
        sampler, 0, 3, rng::derive_stream(ctx.base_seed, 99990 + rep), T);
    for (int tau = 0; tau <= T; ++tau) {
      walk_occ[tau].add(static_cast<double>(walk.occupancy[tau]));
    }
  }
  double cap = 1.0;
  for (int tau = 0; tau <= T; ++tau) {
    table.add_row({static_cast<std::int64_t>(tau), dag_width[tau].mean(),
                   walk_occ[tau].mean(),
                   dag_width[tau].mean() / std::max(1.0, walk_occ[tau].mean()),
                   cap});
    cap *= 3.0;
  }
  session.emit(table);

  // Cover time sanity on a denser, smaller instance.
  const graph::CompleteSampler small(
      static_cast<graph::VertexId>(ctx.scaled(4096, 64)));
  analysis::OnlineStats cover;
  for (std::size_t rep = 0; rep < ctx.rep_count(10); ++rep) {
    const auto walk = votingdag::run_cobra(
        small, 0, 3, rng::derive_stream(ctx.base_seed, 31 + rep), 200);
    if (walk.covered) cover.add(static_cast<double>(walk.cover_time));
  }
  std::cout << "k=3 COBRA cover time on K_" << small.num_vertices() << ": mean "
            << cover.mean() << " steps over " << cover.count()
            << " covered runs (O(log n) expected on expanders, [3]).\n"
            << "\npaper: level T-t of H is the COBRA occupied set at time t;\n"
            << "ratio column must sit at ~1 and growth follows min(3^t, "
               "saturation).\n";
  return session.finish();
}
