#!/usr/bin/env python3
"""Unit tests for compare_bench_json.py (pure stdlib, run via ctest).

The contract under test, in order of importance:
  - --strict fails (exit 1) when a baseline benchmark disappeared from
    the candidate, but a benchmark NEW in the candidate — the PR that
    introduces a BM_* before bench/reference/ knows about it — only
    warns and is skipped, never gate-fails.
  - regressions past --threshold exit 1; within threshold exit 0.
  - aggregate rows (mean/median/stddev) are ignored.
  - unreadable input exits 2, not a traceback.
"""

import contextlib
import io
import json
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import compare_bench_json  # noqa: E402


def bench_doc(rows):
    return {"benchmarks": rows}


def row(name, real_time, run_type="iteration"):
    return {"name": name, "run_type": run_type,
            "real_time": real_time, "cpu_time": real_time * 0.9}


class CompareBenchJsonTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        root = Path(self._tmp.name)
        self.baseline = root / "baseline"
        self.candidate = root / "candidate"
        self.baseline.mkdir()
        self.candidate.mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, directory, filename, rows):
        (directory / filename).write_text(json.dumps(bench_doc(rows)),
                                          encoding="utf-8")

    def run_main(self, *extra):
        """Returns (exit_code, stdout, stderr)."""
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            code = compare_bench_json.main(
                [str(self.baseline), str(self.candidate), *extra])
        return code, out.getvalue(), err.getvalue()

    def test_identical_results_pass(self):
        rows = [row("BM_step/1000", 100.0)]
        self.write(self.baseline, "BENCH_step.json", rows)
        self.write(self.candidate, "BENCH_step.json", rows)
        code, out, _ = self.run_main("--strict")
        self.assertEqual(code, 0)
        self.assertIn("no regressions", out)

    def test_regression_past_threshold_fails(self):
        self.write(self.baseline, "BENCH_step.json", [row("BM_step", 100.0)])
        self.write(self.candidate, "BENCH_step.json", [row("BM_step", 200.0)])
        code, out, err = self.run_main("--threshold", "1.5")
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)
        self.assertIn("1 regression(s)", err)

    def test_slowdown_within_threshold_passes(self):
        self.write(self.baseline, "BENCH_step.json", [row("BM_step", 100.0)])
        self.write(self.candidate, "BENCH_step.json", [row("BM_step", 140.0)])
        code, _, _ = self.run_main("--threshold", "1.5")
        self.assertEqual(code, 0)

    def test_new_benchmark_warns_and_skips_even_under_strict(self):
        # The satellite case: the PR that introduces BM_new predates its
        # bench/reference/ entry. --strict must not gate-fail it.
        self.write(self.baseline, "BENCH_step.json", [row("BM_old", 100.0)])
        self.write(self.candidate, "BENCH_step.json",
                   [row("BM_old", 100.0), row("BM_new", 5.0)])
        code, _, err = self.run_main("--strict")
        self.assertEqual(code, 0)
        self.assertIn("warning: new in candidate", err)
        self.assertIn("BM_new", err)

    def test_disappeared_benchmark_fails_only_under_strict(self):
        self.write(self.baseline, "BENCH_step.json",
                   [row("BM_kept", 100.0), row("BM_gone", 50.0)])
        self.write(self.candidate, "BENCH_step.json", [row("BM_kept", 100.0)])
        code, _, err = self.run_main()
        self.assertEqual(code, 0)
        self.assertIn("warning: missing from candidate: BM_gone", err)
        code, _, err = self.run_main("--strict")
        self.assertEqual(code, 1)
        self.assertIn("1 benchmark(s) missing", err)

    def test_aggregate_rows_are_ignored(self):
        self.write(self.baseline, "BENCH_step.json", [row("BM_step", 100.0)])
        self.write(self.candidate, "BENCH_step.json", [
            row("BM_step", 100.0),
            row("BM_step_mean", 900.0, run_type="aggregate"),
        ])
        code, out, _ = self.run_main("--strict", "--threshold", "1.1")
        self.assertEqual(code, 0)
        self.assertNotIn("BM_step_mean", out)

    def test_cpu_time_metric_is_selectable(self):
        self.write(self.baseline, "BENCH_step.json", [row("BM_step", 100.0)])
        self.write(self.candidate, "BENCH_step.json", [row("BM_step", 300.0)])
        code, out, _ = self.run_main("--metric", "cpu_time",
                                     "--threshold", "2.0")
        self.assertEqual(code, 1)
        self.assertIn("cpu_time", out)

    def test_empty_directory_exits_2(self):
        self.write(self.candidate, "BENCH_step.json", [row("BM_step", 1.0)])
        code, _, err = self.run_main()
        self.assertEqual(code, 2)
        self.assertIn("no BENCH_*.json", err)

    def test_malformed_json_exits_2(self):
        (self.baseline / "BENCH_bad.json").write_text("{not json",
                                                      encoding="utf-8")
        self.write(self.candidate, "BENCH_step.json", [row("BM_step", 1.0)])
        code, _, err = self.run_main()
        self.assertEqual(code, 2)
        self.assertIn("error:", err)


if __name__ == "__main__":
    unittest.main()
