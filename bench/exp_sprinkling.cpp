// E4 — Proposition 3 / eq. (2): the Sprinkling majorisation.
//
// Builds random voting-DAGs on a dense circulant, applies the Sprinkling
// transform below T', and checks two things at once:
//   (a) the coupling X_H <= X_H' holds pointwise on every realisation;
//   (b) the empirical per-level blue rate of X_H' stays below the
//       recursion-(2) bound p_t with eps_{t-1} = 3^{T-t+1}/d.
#include <cmath>
#include <iostream>

#include "analysis/table.hpp"
#include "core/initializer.hpp"
#include "experiments/session.hpp"
#include "experiments/sweep.hpp"
#include "graph/samplers.hpp"
#include "rng/splitmix64.hpp"
#include "theory/recursions.hpp"
#include "votingdag/sprinkling.hpp"

int main(int argc, char** argv) {
  using namespace b3v;
  experiments::Session session(argc, argv, "exp_sprinkling");
  const auto& ctx = session.config();
  std::cout << "E4: Sprinkling process (Prop. 3, eq. 2) — coupling and "
               "level-wise majorisation\n\n";

  const auto n = static_cast<graph::VertexId>(ctx.scaled(1 << 14));
  const int T = 6;
  const int cut = 4;
  const double p0 = 0.4;
  const std::size_t reps = ctx.rep_count(50);

  // Derived degrees replace the old fixed {256, 1024, 4096} (and its
  // d >= n skip guard): every grid point is feasible at the scaled n.
  const auto degrees = experiments::degree_grid(
      {.family = experiments::GraphFamily::kCirculant,
       .lo = 256,
       .alpha = 0.86,
       .points = 3},
      n);
  for (const std::uint32_t d : degrees) {
    const auto sampler = graph::CirculantSampler::dense(n, d);
    const auto bound = theory::sprinkling_trajectory(p0, T, cut, d, false);
    const auto bound_exact = theory::sprinkling_trajectory(p0, T, cut, d, true);

    std::vector<double> blue(cut + 1, 0.0), nodes(cut + 1, 0.0);
    std::size_t coupling_ok = 0;
    double redirect_total = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const std::uint64_t seed = rng::derive_stream(ctx.base_seed, 7000 + rep);
      const auto dag = votingdag::build_voting_dag(sampler, 0, T, seed);
      const auto sprinkled = votingdag::sprinkle(dag, cut);
      const core::Opinions leaves = core::iid_bernoulli(
          dag.level(0).size(), p0, rng::derive_stream(seed, 0xFACE));
      coupling_ok += votingdag::verify_coupling(dag, sprinkled, leaves) ? 1 : 0;
      redirect_total += static_cast<double>(sprinkled.total_redirects());
      const auto colouring = sprinkled.color(leaves);
      for (int t = 0; t <= cut; ++t) {
        blue[t] += static_cast<double>(colouring.blue_at(t));
        nodes[t] += static_cast<double>(colouring.colors[t].size());
      }
    }

    analysis::Table table(
        "E4 per-level blue rate vs recursion (2), d=" + std::to_string(d) +
            " n=" + std::to_string(n) + " T=" + std::to_string(T) +
            " T'=" + std::to_string(cut),
        {"level", "eps_t-1", "empirical_rate", "bound_exact", "bound_upper",
         "within_bound"});
    bool all_within = true;
    for (int t = 0; t <= cut; ++t) {
      const double rate = blue[t] / nodes[t];
      // The bound holds in expectation; allow 3 sigma of Monte-Carlo
      // noise on the finite per-level sample.
      const double sigma =
          std::sqrt(bound.p[t] * (1.0 - bound.p[t]) / std::max(1.0, nodes[t]));
      const bool ok = rate <= bound.p[t] + 3.0 * sigma + 1e-9;
      all_within &= ok;
      table.add_row(
          {static_cast<std::int64_t>(t),
           t == 0 ? 0.0 : theory::sprinkling_epsilon(t, T, d),
           rate, bound_exact.p[t], bound.p[t],
           std::string(ok ? "yes" : "NO")});
    }
    session.emit(table);
    std::cout << "d=" << d << ": coupling X_H <= X_H' held in " << coupling_ok
              << "/" << reps << " realisations; mean redirected edges/DAG = "
              << redirect_total / static_cast<double>(reps)
              << "; all levels within bound: " << (all_within ? "yes" : "NO")
              << "\n\n";
  }
  std::cout << "paper: the sprinkled opinions are independent per level and "
               "majorised by Bernoulli(p_t); denser d shrinks eps and the "
               "redirect count.\n";
  return session.finish();
}
