// E15 — two-choices vs Best-of-3 consensus times across the dense
// families (Cooper, Elsässer & Radzik, arXiv:1404.7479, against the
// paper's protocol).
//
// Both rules share the drift map b -> b^2(3 - 2b) (two-choices IS
// Best-of-2 with keep-own ties — step_two_choices documents the
// bit-for-bit equality), so mean-field predicts the SAME
// doubly-logarithmic consensus profile; two-choices pays one fewer
// sample per vertex per round. The table measures how far that
// equivalence survives off the mean-field tree: same families the
// other experiments use (note N1), same seeds for both rules. The
// rules are core::Protocol values run through core::run — add another
// with --rule= or by extending the default list.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "core/engine.hpp"
#include "core/initializer.hpp"
#include "core/protocol.hpp"
#include "experiments/runner.hpp"
#include "experiments/session.hpp"
#include "experiments/sweep.hpp"
#include "graph/generators.hpp"
#include "graph/samplers.hpp"
#include "rng/splitmix64.hpp"
#include "rng/streams.hpp"

namespace {

using namespace b3v;

constexpr std::uint64_t kMaxRounds = 300;

/// Adds one row per protocol for a (family, delta) pair, with
/// per-repetition seeds shared between the rules so the comparison is
/// paired. The rounds_ratio column is relative to the FIRST protocol
/// in the list (Best-of-3 in the default run).
template <graph::NeighborSampler S>
void add_rows(analysis::Table& table, const S& sampler,
              const std::string& family, std::uint32_t d, double delta,
              std::span<const core::Protocol> protocols, std::size_t reps,
              std::uint64_t family_seed, parallel::ThreadPool& pool) {
  const std::size_t n = sampler.num_vertices();
  double baseline_mean = 0.0;
  for (std::size_t pi = 0; pi < protocols.size(); ++pi) {
    const core::Protocol& protocol = protocols[pi];
    const auto agg = experiments::aggregate_runs(
        reps, family_seed, [&](std::uint64_t seed) {
          core::RunSpec spec;
          spec.protocol = protocol;
          spec.seed = seed;
          spec.max_rounds = kMaxRounds;
          return core::run(sampler,
                           core::iid_bernoulli(n, 0.5 - delta,
                                               rng::derive_stream(seed, rng::kStreamInitialPlacement)),
                           spec, pool);
        });
    if (pi == 0) baseline_mean = agg.rounds.mean();
    const double ratio =
        pi > 0 && baseline_mean > 0.0 ? agg.rounds.mean() / baseline_mean : 1.0;
    table.add_row({family, static_cast<std::int64_t>(d),
                   core::name(protocol), delta,
                   static_cast<std::int64_t>(reps), agg.rounds.mean(),
                   agg.rounds.ci95_half_width(), agg.red_win_rate(),
                   static_cast<std::int64_t>(agg.no_consensus), ratio});
  }
}

}  // namespace

int main(int argc, char** argv) {
  experiments::Session session(argc, argv, "exp_two_choices");
  const auto& ctx = session.config();
  auto& pool = session.pool();
  std::cout << "E15: two-choices vs Best-of-3 across dense families\n\n";

  const std::vector<core::Protocol> protocols =
      ctx.protocols_or({core::best_of(3), core::two_choices()});

  const auto n = static_cast<graph::VertexId>(ctx.scaled(std::size_t{1} << 13));
  const std::size_t reps = ctx.rep_count(12);
  const auto ref_degree = static_cast<std::uint32_t>(
      std::lround(std::pow(static_cast<double>(n), 0.7)));

  const std::uint32_t d_circ = experiments::snap_degree(
      experiments::GraphFamily::kCirculant, n, ref_degree);
  const std::uint32_t d_rr = experiments::snap_degree(
      experiments::GraphFamily::kRandomRegular, n, 64);
  const std::uint32_t d_gnp = experiments::snap_degree(
      experiments::GraphFamily::kGnp, n, ref_degree);

  const graph::CompleteSampler complete(n);
  const auto circulant = graph::CirculantSampler::dense(n, d_circ);
  const graph::Graph g_rr = graph::random_regular(
      n, d_rr, rng::derive_stream(ctx.base_seed, 0xE15001));
  const graph::CsrSampler rr(g_rr);
  const graph::Graph g_gnp = graph::erdos_renyi_gnp(
      n, static_cast<double>(d_gnp) / static_cast<double>(n),
      rng::derive_stream(ctx.base_seed, 0xE15002));
  const graph::CsrSampler gnp(g_gnp);

  analysis::Table table(
      "E15 consensus time, two-choices vs Best-of-3, n=" + std::to_string(n) +
          ", cap " + std::to_string(kMaxRounds),
      {"family", "d", "rule", "delta", "reps", "mean_rounds", "ci95",
       "red_win_rate", "no_consensus(cap)", "rounds_ratio"});
  for (const double delta : {0.1, 0.02}) {
    const auto seed_for = [&](std::uint64_t tag) {
      return rng::derive_stream(ctx.base_seed,
                                tag ^ static_cast<std::uint64_t>(delta * 1e6));
    };
    add_rows(table, complete, "complete", n - 1, delta, protocols, reps,
             seed_for(1), pool);
    add_rows(table, circulant, "circulant", d_circ, delta, protocols, reps,
             seed_for(2), pool);
    add_rows(table, rr, "random_regular", d_rr, delta, protocols, reps,
             seed_for(3), pool);
    add_rows(table, gnp, "gnp", d_gnp, delta, protocols, reps, seed_for(4),
             pool);
  }
  session.emit(table);
  std::cout
      << "Expected shape: identical drift maps, so rounds_ratio ~ 1 on "
         "every\n"
      << "dense family at both deltas (two-choices trails slightly on the\n"
      << "banded circulant, where its weaker per-round update widens the\n"
      << "note-N4 metastability window); red_win_rate ~ 1 throughout. Two-\n"
      << "choices buys the same consensus profile with 2 samples per vertex\n"
      << "per round instead of 3.\n";
  return session.finish();
}
