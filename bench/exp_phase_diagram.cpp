// E6 — Theorem 1's hypothesis region: majority win rate over the
// (delta, d) grid.
//
// The theorem requires delta >= (log d)^-C; below some curve in (delta,
// d) the guarantee should degrade (win rate < 1 or slow consensus).
// Each cell reports the red win rate with a Wilson 95% interval.
//
// The degree axis is DERIVED from the scaled n (sweep.hpp), never a
// fixed list: the old hard-coded {8, 32, 128, 512} asked
// random_regular(819, 512) at B3V_SCALE=0.05 — a 0.63-dense
// configuration model that ground through minutes of repair rounds and
// then threw, aborting the binary.
#include <cmath>
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/engine.hpp"
#include "core/initializer.hpp"
#include "experiments/runner.hpp"
#include "experiments/session.hpp"
#include "experiments/sweep.hpp"
#include "graph/samplers.hpp"
#include "rng/splitmix64.hpp"

int main(int argc, char** argv) {
  using namespace b3v;
  experiments::Session session(argc, argv, "exp_phase_diagram");
  const auto& ctx = session.config();
  auto& pool = session.pool();
  std::cout << "E6: phase diagram — red (majority) win rate over (delta, d)\n"
            << "paper hypothesis: w.h.p. red wins when delta >= (log d)^-C\n\n";

  const auto n = static_cast<graph::VertexId>(ctx.scaled(1 << 14));
  const std::size_t reps = ctx.rep_count(40);

  // Random regular graphs are expanders w.h.p., so the diagram isolates
  // the delta-vs-degree hypothesis from geometric metastability (which
  // circulant instances add on top — see E9 and EXPERIMENTS.md note N4).
  const auto degrees = experiments::degree_grid(
      {.family = experiments::GraphFamily::kRandomRegular,
       .lo = 8,
       .alpha = 0.65,
       .points = 4},
      n);
  analysis::Table table(
      "E6 red win rate on random d-regular, n=" + std::to_string(n) + ", " +
          std::to_string(reps) + " runs/cell",
      {"d", "delta", "red_win_rate", "wilson_lo", "wilson_hi", "mean_rounds",
       "1/log(d)", "capped"});
  for (const std::uint32_t d : degrees) {
    const graph::Graph g = graph::random_regular(
        n, d, rng::derive_stream(ctx.base_seed, d));
    for (const double delta : experiments::geometric_grid(0.2, 0.0008, 5)) {
      std::uint64_t red = 0, capped = 0;
      analysis::OnlineStats rounds;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const std::uint64_t seed =
            rng::derive_stream(ctx.base_seed,
                               (static_cast<std::uint64_t>(d) << 20) ^ rep ^
                                   static_cast<std::uint64_t>(delta * 1e6));
        const auto result = experiments::theorem1_run(g, delta, seed, pool, 300);
        if (result.consensus && result.winner == core::Opinion::kRed) ++red;
        if (result.consensus) {
          rounds.add(static_cast<double>(result.rounds));
        } else {
          ++capped;
        }
      }
      const auto iv = analysis::wilson_interval(red, reps);
      table.add_row({static_cast<std::int64_t>(d), delta,
                     static_cast<double>(red) / static_cast<double>(reps),
                     iv.lo, iv.hi, rounds.mean(),
                     1.0 / std::log(static_cast<double>(d)),
                     static_cast<std::int64_t>(capped)});
    }
  }
  session.emit(table);
  std::cout
      << "Expected shape: win rate ~ 1 whenever delta is comfortably above\n"
      << "1/log(d) (second-to-last column); for the smallest deltas the rate\n"
      << "drops towards a coin flip (the initial-coin noise\n"
      << "sqrt(1/n) ~ " << 1.0 / std::sqrt(static_cast<double>(n))
      << " competes with delta). Dense columns keep the guarantee further\n"
      << "down the delta axis, matching delta >= (log d)^-C.\n";
  return session.finish();
}
