// E13 (extension) — robustness of Best-of-3 to uniform noise.
//
// With probability `noise` a vertex adopts a fair coin instead of the
// sampled majority. Mean-field predicts a pitchfork at noise = 1/3:
// below it the dynamics reaches a metastable near-consensus with
// minority mass = the stable low fixed point of
// (1-q)(3b^2-2b^3) + q/2; above it the population stays mixed at 1/2.
// This extension experiment probes the protocol the paper analyses
// under the fault model its "distributed computing" motivation implies.
#include <cmath>
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/dynamics.hpp"
#include "core/initializer.hpp"
#include "experiments/session.hpp"
#include "graph/samplers.hpp"
#include "rng/splitmix64.hpp"
#include "theory/recursions.hpp"

int main(int argc, char** argv) {
  using namespace b3v;
  experiments::Session session(argc, argv, "exp_noise");
  const auto& ctx = session.config();
  auto& pool = session.pool();
  std::cout << "E13: noisy Best-of-3 — stationary minority mass vs noise\n\n";

  const auto n = static_cast<graph::VertexId>(ctx.scaled(1 << 16));
  const graph::CompleteSampler sampler(n);
  const std::uint64_t warmup = 30, measure = 30;

  analysis::Table table(
      "E13 stationary blue fraction, K_n n=" + std::to_string(n) +
          " (start delta=0.1, " + std::to_string(warmup) + " warmup + " +
          std::to_string(measure) + " measured rounds)",
      {"noise", "sim_stationary_blue", "meanfield_fixed_point", "abs_diff"});
  for (const double noise : {0.0, 0.05, 0.1, 0.2, 0.3, 1.0 / 3.0, 0.4}) {
    core::Opinions cur = core::iid_bernoulli(
        n, 0.4, rng::derive_stream(ctx.base_seed, static_cast<std::uint64_t>(noise * 1e6)));
    core::Opinions next(n);
    std::uint64_t blue = 0;
    analysis::OnlineStats stationary;
    for (std::uint64_t round = 0; round < warmup + measure; ++round) {
      blue = core::step_best_of_k_noisy(sampler, cur, next, 3,
                                        core::TieRule::kRandom, noise,
                                        rng::derive_stream(ctx.base_seed, 77),
                                        round, pool);
      cur.swap(next);
      if (round >= warmup) {
        stationary.add(static_cast<double>(blue) / static_cast<double>(n));
      }
    }
    const double predicted = theory::noisy_stationary_minority(noise);
    table.add_row({noise, stationary.mean(), predicted,
                   std::abs(stationary.mean() - predicted)});
  }
  session.emit(table);
  std::cout
      << "Expected shape: the measured stationary blue mass matches the\n"
      << "mean-field fixed point to O(1/sqrt(n)); it grows smoothly with\n"
      << "noise and jumps to ~1/2 at the pitchfork noise = 1/3 — Best-of-3\n"
      << "tolerates up to a third of fair-coin faults before consensus\n"
      << "degenerates.\n";
  return session.finish();
}
