// E13 (extension) — robustness of Best-of-3 to uniform noise.
//
// With probability `noise` a vertex adopts a fair coin instead of the
// sampled majority. Mean-field predicts a pitchfork at noise = 1/3:
// below it the dynamics reaches a metastable near-consensus with
// minority mass = the stable low fixed point of
// (1-q)(3b^2-2b^3) + q/2; above it the population stays mixed at 1/2.
// This extension experiment probes the protocol the paper analyses
// under the fault model its "distributed computing" motivation implies.
#include <cmath>
#include <iostream>
#include <span>
#include <vector>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/engine.hpp"
#include "core/initializer.hpp"
#include "core/protocol.hpp"
#include "experiments/session.hpp"
#include "graph/samplers.hpp"
#include "rng/splitmix64.hpp"
#include "theory/recursions.hpp"

int main(int argc, char** argv) {
  using namespace b3v;
  experiments::Session session(argc, argv, "exp_noise");
  const auto& ctx = session.config();
  auto& pool = session.pool();
  std::cout << "E13: noisy Best-of-3 — stationary minority mass vs noise\n\n";

  const auto n = static_cast<graph::VertexId>(ctx.scaled(1 << 16));
  const graph::CompleteSampler sampler(n);
  const std::uint64_t warmup = 30, measure = 30;

  // The noise axis rides on a base rule: --rule= swaps the rule, and a
  // +noise suffix pins the sweep to that single noise level (the title
  // names the NOISELESS base — the noise column is the axis). The
  // mean-field fixed-point column is Best-of-3's prediction, so it is
  // blanked (NaN) for any other base rule.
  const core::Protocol given = ctx.protocols_or({core::best_of(3)}).front();
  core::Protocol base = given;  // copy, not re-aggregation: keep every field
  base.noise = 0.0;
  const bool base_is_bo3 = base == core::best_of(3);
  std::vector<double> noise_levels{0.0, 0.05, 0.1, 0.2, 0.3, 1.0 / 3.0, 0.4};
  if (given.noise > 0.0) noise_levels = {given.noise};

  analysis::Table table(
      "E13 stationary blue fraction, K_n n=" + std::to_string(n) +
          " (start delta=0.1, " + std::to_string(warmup) + " warmup + " +
          std::to_string(measure) + " measured rounds, rule " +
          core::name(base) + ")",
      {"noise", "sim_stationary_blue", "meanfield_fixed_point", "abs_diff"});
  for (const double noise : noise_levels) {
    analysis::OnlineStats stationary;
    core::RunSpec spec;
    spec.protocol = core::Protocol{base.kind, base.k, base.tie, noise};
    spec.seed = rng::derive_stream(ctx.base_seed, 77);
    spec.max_rounds = warmup + measure;
    spec.memory_policy = ctx.memory_policy;
    // Noise makes consensus non-absorbing: measure the stationary
    // regime over the full budget instead of stopping.
    spec.stop_at_consensus = false;
    spec.observer = [&](std::uint64_t t, std::span<const core::OpinionValue>,
                        std::uint64_t blue) {
      if (t > warmup) {
        stationary.add(static_cast<double>(blue) / static_cast<double>(n));
      }
      return true;
    };
    // The stationary observer consumes the run; the result is redundant.
    static_cast<void>(core::run(
        sampler,
        core::iid_bernoulli(
            n, 0.4,
            rng::derive_stream(ctx.base_seed,
                               static_cast<std::uint64_t>(noise * 1e6))),
        spec, pool));
    const double predicted = base_is_bo3
                                 ? theory::noisy_stationary_minority(noise)
                                 : std::nan("");
    table.add_row({noise, stationary.mean(), predicted,
                   std::abs(stationary.mean() - predicted)});
  }
  session.emit(table);
  if (base_is_bo3) {
    std::cout
        << "Expected shape: the measured stationary blue mass matches the\n"
        << "mean-field fixed point to O(1/sqrt(n)); it grows smoothly with\n"
        << "noise and jumps to ~1/2 at the pitchfork noise = 1/3 — Best-of-3\n"
        << "tolerates up to a third of fair-coin faults before consensus\n"
        << "degenerates.\n";
  } else {
    std::cout << "Expected shape: the pitchfork analysis (and the NaN theory\n"
              << "column) is Best-of-3's; this run measured "
              << core::name(base) << ".\n";
  }
  return session.finish();
}
