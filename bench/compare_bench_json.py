#!/usr/bin/env python3
"""Compare two directories of BENCH_*.json Google Benchmark outputs.

The before/after currency of docs/BENCHMARKING.md: point this at a
baseline directory (e.g. the bench-json-<sha> CI artifact of the base
commit, or a local `cmake --build build --target bench-json` snapshot)
and a candidate directory, and it exits nonzero if any benchmark got
slower than the threshold ratio. Pure stdlib; no Google Benchmark
checkout (compare.py) needed.

  python3 bench/compare_bench_json.py /tmp/before build/bench-json
  python3 bench/compare_bench_json.py --threshold 1.10 --metric cpu_time a b

Exit codes: 0 = no regressions, 1 = regression past threshold (or, with
--strict, benchmarks missing from the candidate), 2 = bad input.

--strict is deliberately asymmetric: a baseline benchmark missing from
the candidate fails (silent coverage loss — a benchmark disappeared),
but a candidate benchmark missing from the baseline only warns and is
skipped. The PR that introduces a new BM_* must not gate-fail just
because bench/reference/ predates it; the warning tells the author to
refresh the reference so the NEXT change to that benchmark is gated.
"""

import argparse
import json
import sys
from pathlib import Path

METRICS = ("real_time", "cpu_time", "items_per_second")


def load_dir(path: Path) -> dict[str, dict[str, float]]:
    """name -> {metric: value} for every BENCH_*.json in `path`.

    Aggregate rows (mean/median/stddev of --benchmark_repetitions runs)
    are skipped: plain per-run rows are what the bench-json target
    emits. Duplicate names keep the first occurrence.
    """
    results: dict[str, dict[str, float]] = {}
    files = sorted(path.glob("BENCH_*.json"))
    if not files:
        raise FileNotFoundError(f"no BENCH_*.json under {path}")
    for f in files:
        with open(f, encoding="utf-8") as fh:
            doc = json.load(fh)
        for row in doc.get("benchmarks", []):
            if row.get("run_type") == "aggregate":
                continue
            name = row.get("name")
            if not name or name in results:
                continue
            results[name] = {m: row[m] for m in METRICS if m in row}
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json directories; fail on regressions")
    parser.add_argument("baseline", type=Path)
    parser.add_argument("candidate", type=Path)
    parser.add_argument("--metric", choices=("real_time", "cpu_time"),
                        default="real_time",
                        help="time metric to compare (default: real_time)")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="fail when candidate/baseline exceeds this "
                             "ratio (default: 1.25; CI machines are noisy, "
                             "keep it loose there)")
    parser.add_argument("--strict", action="store_true",
                        help="also fail when a baseline benchmark is "
                             "missing from the candidate (disappeared "
                             "coverage); benchmarks new in the candidate "
                             "still only warn and are skipped")
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        parser.error("--threshold must be positive")

    try:
        baseline = load_dir(args.baseline)
        candidate = load_dir(args.candidate)
    except (FileNotFoundError, json.JSONDecodeError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    regressions: list[tuple[str, float, float, float]] = []
    missing = [n for n in baseline if n not in candidate]
    new = [n for n in candidate if n not in baseline]
    width = max((len(n) for n in baseline), default=4)
    print(f"{'benchmark':<{width}}  {'base ' + args.metric:>14}  "
          f"{'cand ' + args.metric:>14}  {'ratio':>7}")
    for name, base_row in baseline.items():
        if name in missing or args.metric not in base_row:
            continue
        base = base_row[args.metric]
        cand = candidate[name].get(args.metric)
        if cand is None or base <= 0:
            continue
        ratio = cand / base
        flag = "  <-- REGRESSION" if ratio > args.threshold else ""
        print(f"{name:<{width}}  {base:14.1f}  {cand:14.1f}  "
              f"{ratio:7.3f}{flag}")
        if ratio > args.threshold:
            regressions.append((name, base, cand, ratio))

    for name in missing:
        print(f"warning: missing from candidate: {name}", file=sys.stderr)
    for name in new:
        # Never a failure, even under --strict: the PR that adds a
        # benchmark predates its reference entry by construction.
        print(f"warning: new in candidate (no baseline entry): {name} — "
              "skipping; refresh the baseline to gate it", file=sys.stderr)

    if regressions:
        print(f"\n{len(regressions)} regression(s) past "
              f"{args.threshold:.2f}x on {args.metric}", file=sys.stderr)
        return 1
    if args.strict and missing:
        print(f"\n--strict: {len(missing)} benchmark(s) missing",
              file=sys.stderr)
        return 1
    print("\nno regressions past "
          f"{args.threshold:.2f}x on {args.metric}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
