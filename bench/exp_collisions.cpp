// E5 — Lemma 7: collision-level statistics of the upper DAG.
//
// For DAGs of h+1 levels over graphs of several degrees, measures the
// distribution of C (number of levels with >= 1 collision) and compares
//   (a) E[C] with the Binomial(h, 9^h/d) domination,
//   (b) empirical P(C > h/2) with the closed-form tail
//       (2e 9^h / d)^{h/2} of eq. (7).
#include <cmath>
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "experiments/session.hpp"
#include "experiments/sweep.hpp"
#include "graph/samplers.hpp"
#include "rng/splitmix64.hpp"
#include "theory/bounds.hpp"
#include "votingdag/dag.hpp"

int main(int argc, char** argv) {
  using namespace b3v;
  experiments::Session session(argc, argv, "exp_collisions");
  const auto& ctx = session.config();
  std::cout << "E5: collision-level count C vs the Lemma 7 bounds\n\n";

  const int h = 5;
  const std::size_t reps = ctx.rep_count(400);
  analysis::Table table(
      "E5 collision levels, h=" + std::to_string(h) +
          " (DAG of h+1 levels), " + std::to_string(reps) + " DAGs/row",
      {"n", "d", "mean_C", "max_C", "binom_mean_bound", "emp_P(C>h/2)",
       "eq7_tail_bound", "bound_holds"});

  const auto n = static_cast<graph::VertexId>(ctx.scaled(1 << 16));
  // Every degree is feasible by construction (the old fixed list
  // {128, ..., 16384} needed an ad-hoc d >= n skip guard under
  // B3V_SCALE); the top of the grid tracks n^0.88 like the original
  // n/4 endpoint did.
  const auto degrees = experiments::degree_grid(
      {.family = experiments::GraphFamily::kCirculant,
       .lo = 128,
       .alpha = 0.88,
       .points = 5},
      n);
  for (const std::uint32_t d : degrees) {
    const auto sampler = graph::CirculantSampler::dense(n, d);
    analysis::OnlineStats c_stats;
    std::size_t exceed = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto dag = votingdag::build_voting_dag(
          sampler, static_cast<graph::VertexId>(rep % n), h,
          rng::derive_stream(ctx.base_seed, 9000 + rep));
      const int c = dag.count_collision_levels();
      c_stats.add(static_cast<double>(c));
      if (c > h / 2) ++exceed;
    }
    // E[Bin(h, 9^h/d)] = h * min(1, 9^h/d): the domination's mean.
    const double binom_mean =
        h * std::min(1.0, std::pow(9.0, h) / static_cast<double>(d));
    const double emp_tail = static_cast<double>(exceed) / static_cast<double>(reps);
    const double bound = theory::collision_count_tail(h, d);
    table.add_row({static_cast<std::int64_t>(n), static_cast<std::int64_t>(d),
                   c_stats.mean(), c_stats.max(), binom_mean, emp_tail, bound,
                   std::string(emp_tail <= bound + 1e-12 ? "yes" : "NO")});
  }
  session.emit(table);
  std::cout
      << "paper: C is dominated by Bin(h, 9^h/d); P(C > h/2) <= (2e 9^h/d)^{h/2}.\n"
      << "Expected shape: mean C and the tail collapse as d grows; the\n"
      << "closed-form bound is loose (often the trivial 1) until 9^h << d —\n"
      << "visible above as the bound saturating at 1 for the sparse rows\n"
      << "while the empirical tail is already 0.\n";
  return session.finish();
}
