// M3 — RNG microbenchmarks: the ablation DESIGN.md calls out
// (counter-based Philox vs sequential xoshiro) plus bounded-int and
// Bernoulli sampling costs.
#include <benchmark/benchmark.h>

#include "rng/bounded.hpp"
#include "rng/distributions.hpp"
#include "rng/philox.hpp"
#include "rng/xoshiro256.hpp"

namespace {

using namespace b3v::rng;

void BM_Xoshiro_u64(benchmark::State& state) {
  Xoshiro256 gen(42);
  for (auto _ : state) benchmark::DoNotOptimize(gen.next_u64());
}
BENCHMARK(BM_Xoshiro_u64);

void BM_Philox_block(benchmark::State& state) {
  Philox4x32::Counter ctr{1, 2, 3, 4};
  const Philox4x32::Key key{5, 6};
  for (auto _ : state) {
    ++ctr[0];
    benchmark::DoNotOptimize(Philox4x32::generate(ctr, key));
  }
}
BENCHMARK(BM_Philox_block);

void BM_CounterRng_simulator_pattern(benchmark::State& state) {
  // The hot pattern of the simulation kernel: construct a per-(round,
  // vertex) generator and draw three bounded integers.
  std::uint64_t v = 0;
  for (auto _ : state) {
    CounterRng gen(123, 7, ++v, 0);
    benchmark::DoNotOptimize(bounded_u32(gen, 1000));
    benchmark::DoNotOptimize(bounded_u32(gen, 1000));
    benchmark::DoNotOptimize(bounded_u32(gen, 1000));
  }
}
BENCHMARK(BM_CounterRng_simulator_pattern);

void BM_CounterRngTile_simulator_pattern(benchmark::State& state) {
  // The batched form of the pattern above: one SoA tile computes the
  // first block of kWidth consecutive vertex streams, then each lane
  // serves its three bounded draws from the precomputed block. The
  // ratio to BM_CounterRng_simulator_pattern (x16 iterations) is the
  // per-draw win of batching the Philox work.
  std::uint64_t base = 0;
  for (auto _ : state) {
    const CounterRngTile tile(123, 7, base, 0);
    base += CounterRngTile::kWidth;
    for (std::size_t lane = 0; lane < CounterRngTile::kWidth; ++lane) {
      auto gen = tile.stream(lane);
      benchmark::DoNotOptimize(bounded_u32(gen, 1000));
      benchmark::DoNotOptimize(bounded_u32(gen, 1000));
      benchmark::DoNotOptimize(bounded_u32(gen, 1000));
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(CounterRngTile::kWidth));
}
BENCHMARK(BM_CounterRngTile_simulator_pattern);

void BM_CounterRngTile_blocks(benchmark::State& state) {
  // Raw batched block throughput: 16 Philox blocks per tile vs 16
  // sequential BM_Philox_block generations.
  std::uint64_t base = 0;
  for (auto _ : state) {
    CounterRngTile tile(123, 7, base, 0);
    base += CounterRngTile::kWidth;
    auto gen = tile.stream(0);
    benchmark::DoNotOptimize(gen.next_u32());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(CounterRngTile::kWidth));
}
BENCHMARK(BM_CounterRngTile_blocks);

void BM_Xoshiro_simulator_pattern(benchmark::State& state) {
  // The sequential alternative: same three draws from one stream. This
  // is what the counter-based design trades ~2x against for exact
  // thread-count-invariant reproducibility.
  Xoshiro256 gen(123);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bounded_u32(gen, 1000));
    benchmark::DoNotOptimize(bounded_u32(gen, 1000));
    benchmark::DoNotOptimize(bounded_u32(gen, 1000));
  }
}
BENCHMARK(BM_Xoshiro_simulator_pattern);

void BM_Bounded_u32(benchmark::State& state) {
  Xoshiro256 gen(7);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(bounded_u32(gen, n));
}
BENCHMARK(BM_Bounded_u32)->Arg(3)->Arg(1000)->Arg(1 << 20);

void BM_Bernoulli(benchmark::State& state) {
  Xoshiro256 gen(7);
  const BernoulliSampler coin(0.4);
  for (auto _ : state) benchmark::DoNotOptimize(coin(gen));
}
BENCHMARK(BM_Bernoulli);

void BM_Geometric(benchmark::State& state) {
  Xoshiro256 gen(7);
  for (auto _ : state) benchmark::DoNotOptimize(geometric(gen, 0.01));
}
BENCHMARK(BM_Geometric);

}  // namespace

// main() is provided by bench_main.cpp (adds B3V_BENCH_JSON_DIR support).
