// E11 — stripe metastability on geometric graphs (EXPERIMENTS.md note
// N4): a reproduction finding that sharpens the paper's minimum-degree
// story at finite n.
//
// On banded circulants, a blue run wider than the band is locally
// stable: every vertex inside it samples a blue-majority neighbourhood.
// Under the i.i.d. start such runs nucleate with probability ~
// (n/d) exp(-c delta^2 d), so at fixed laptop-scale n the dynamics
// freezes once delta drops below ~1/sqrt(d) even though Theorem 1 (an
// asymptotic w.h.p. statement) still holds as n -> infinity.
// Watts-Strogatz rewiring destroys the geometry: this binary sweeps the
// rewiring probability beta and shows the stripes (and the stalls)
// disappear with a few percent of long-range edges.
#include <cmath>
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/engine.hpp"
#include "core/initializer.hpp"
#include "core/metrics.hpp"
#include "core/protocol.hpp"
#include "experiments/session.hpp"
#include "experiments/sweep.hpp"
#include "graph/generators.hpp"
#include "graph/samplers.hpp"
#include "rng/splitmix64.hpp"
#include "rng/streams.hpp"

int main(int argc, char** argv) {
  using namespace b3v;
  experiments::Session session(argc, argv, "exp_stripes");
  const auto& ctx = session.config();
  auto& pool = session.pool();
  std::cout << "E11: geometric stripe metastability and its destruction by "
               "rewiring (note N4)\n\n";

  const auto n = static_cast<graph::VertexId>(ctx.scaled(1 << 14));
  // Reference band 128, snapped to the Watts-Strogatz feasible range at
  // the scaled n (even ring degree, sparse enough to rewire quickly).
  const std::uint32_t d = experiments::snap_degree(
      experiments::GraphFamily::kWattsStrogatz, n, 128);
  // Keep delta^2 d fixed (~0.2) so stripes nucleate at every scale.
  const double delta = std::sqrt(0.2 / static_cast<double>(d));
  const std::size_t reps = ctx.rep_count(10);
  const std::uint64_t cap = 800;

  const core::Protocol protocol = ctx.protocols_or({core::best_of(3)}).front();

  analysis::Table table(
      "E11 Watts-Strogatz sweep, n=" + std::to_string(n) + " d=" +
          std::to_string(d) + " delta=" + std::to_string(delta) +
          " cap=" + std::to_string(cap) + ", rule " + core::name(protocol),
      {"beta", "mean_rounds", "capped", "red_win_rate",
       "final_longest_blue_run", "band", "stripe_frozen"});

  for (const double beta : {0.0, 0.01, 0.05, 0.2, 1.0}) {
    analysis::OnlineStats rounds, longest;
    std::uint64_t red = 0, capped = 0, frozen = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const graph::Graph g = graph::watts_strogatz(
          n, d, beta, rng::derive_stream(ctx.base_seed, rep * 31 +
                                             static_cast<std::uint64_t>(beta * 100)));
      const graph::CsrSampler sampler(g);
      core::RunSpec spec;
      spec.protocol = protocol;
      spec.seed = rng::derive_stream(ctx.base_seed, 7000 + rep);
      spec.max_rounds = cap;
      spec.memory_policy = ctx.memory_policy;
      const auto result = core::run(
          sampler,
          core::iid_bernoulli(n, 0.5 - delta,
                              rng::derive_stream(spec.seed, rng::kStreamInitialPlacement)),
          spec, pool);
      // The stripe metrics read the end configuration straight from
      // the result (moved out of the engine, no per-round copies).
      const auto stats = core::segment_stats(result.final_state);
      longest.add(static_cast<double>(stats.longest_blue));
      if (result.consensus) {
        rounds.add(static_cast<double>(result.rounds));
        red += result.final_blue == 0;
      } else {
        ++capped;
        // Frozen stripe: a blue run wider than the full band survives.
        frozen += core::has_blue_stripe(result.final_state, d) ? 1 : 0;
      }
    }
    table.add_row({beta, rounds.mean(), static_cast<std::int64_t>(capped),
                   static_cast<double>(red) / static_cast<double>(reps),
                   longest.mean(), static_cast<std::int64_t>(d),
                   static_cast<std::int64_t>(frozen)});
  }
  session.emit(table);
  std::cout
      << "Expected shape: at beta=0 (pure circulant) a large fraction of\n"
      << "runs freeze with a blue run >= the band width d and hit the cap;\n"
      << "a few percent of rewiring (beta=0.05) already restores fast\n"
      << "majority consensus — expansion, not density alone, is what kills\n"
      << "the stripes at finite n. Theorem 1's min-degree hypothesis covers\n"
      << "this *asymptotically* (the nucleation probability\n"
      << "(n/d) exp(-c delta^2 d) vanishes for d = n^alpha), which is the\n"
      << "sense in which the finite-n freeze and the theorem coexist.\n";
  return session.finish();
}
