// E3 — eq. (1): on the complete graph the simulated blue fraction
// tracks the mean-field recursion b_{t+1} = 3 b_t^2 - 2 b_t^3.
//
// For each delta we run the dynamics on implicit K_n and report the
// per-round |simulated - recursion| error, which should be
// O(n^{-1/2})-ish per step (concentration of the binomial round).
#include <cmath>
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/engine.hpp"
#include "core/initializer.hpp"
#include "experiments/runner.hpp"
#include "experiments/session.hpp"
#include "graph/samplers.hpp"
#include "rng/splitmix64.hpp"
#include "rng/streams.hpp"
#include "theory/recursions.hpp"

int main(int argc, char** argv) {
  using namespace b3v;
  experiments::Session session(argc, argv, "exp_recursion_complete");
  const auto& ctx = session.config();
  auto& pool = session.pool();
  std::cout << "E3: mean-field recursion (eq. 1) vs simulation on K_n\n\n";

  const auto n = static_cast<graph::VertexId>(ctx.scaled(1 << 18));
  const graph::CompleteSampler sampler(n);
  const std::size_t reps = ctx.rep_count(5);

  for (const double delta : {0.2, 0.1, 0.02}) {
    analysis::Table table(
        "E3 blue fraction per round, K_n n=" + std::to_string(n) +
            " delta=" + std::to_string(delta),
        {"round", "recursion_b_t", "sim_mean_b_t", "abs_error",
         "error_x_sqrt_n"});
    // Average trajectories over repetitions (aligned by round).
    std::vector<analysis::OnlineStats> per_round;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      core::RunSpec spec;
      spec.protocol = core::best_of(3);
      spec.seed = rng::derive_stream(ctx.base_seed, 555 + rep);
      spec.max_rounds = 60;
      spec.memory_policy = ctx.memory_policy;
      const auto result = experiments::run_recorded(
          sampler,
          core::iid_bernoulli(n, 0.5 - delta,
                              rng::derive_stream(spec.seed, rng::kStreamInitialPlacement)),
          spec, pool);
      if (per_round.size() < result.blue_trajectory.size()) {
        per_round.resize(result.blue_trajectory.size());
      }
      for (std::size_t t = 0; t < result.blue_trajectory.size(); ++t) {
        per_round[t].add(result.blue_fraction(t));
      }
    }
    const auto recursion =
        theory::meanfield_trajectory(0.5 - delta, static_cast<int>(per_round.size()));
    double max_err = 0.0;
    for (std::size_t t = 0; t < per_round.size(); ++t) {
      if (per_round[t].count() < reps) break;  // some runs already done
      const double err = std::abs(per_round[t].mean() - recursion[t]);
      max_err = std::max(max_err, err);
      table.add_row({static_cast<std::int64_t>(t), recursion[t],
                     per_round[t].mean(), err,
                     err * std::sqrt(static_cast<double>(n))});
    }
    session.emit(table);
    std::cout << "max |sim - recursion| = " << max_err << "  (sqrt(n) x err = "
              << max_err * std::sqrt(static_cast<double>(n))
              << "; paper: fluctuations are O(1/sqrt(n)) per round)\n\n";
  }
  return session.finish();
}
