// E16 — plurality (q-colour) voting: the quasi-majority generalisation
// of Best-of-k (Shimizu & Shiraga arXiv:2002.07411; Becchetti et al.),
// measured as a q × lambda phase surface.
//
// Part A (K_n): an i.i.d. start gives colour 0 a planted advantage adv
// over the uniform 1/q; plurality-of-k should amplify it to consensus
// in O(log log n)-flavoured time, tracking the q-colour mean-field
// simplex recursion (theory::plurality_meanfield_trajectory).
//
// Part B (k-block SBM, one block per colour): block i starts on its
// home colour i with a small global bias toward colour 0, sweeping the
// generalised mixing lambda = (p_in - p_out)/(p_in + (q-1) p_out) at
// fixed expected degree (experiments::sbm_lambda_grid). Mean-field
// predicts a drift-stability lock threshold: below it the globally
// biased colour 0 sweeps every block; above it the run freezes into
// the community-locked state (each block majority-holds its own
// colour, no global consensus). The s_lock_mf column is the predicted
// locked overlap (theory::sbm_plurality_locked_overlap), 0 where the
// mean-field escapes.
//
// Both parts run EVERY protocol through the one multi-opinion
// core::run overload — binary --rule= values work too (they dispatch
// to the exact binary kernels and behave as the q = 2 slice).
#include <cmath>
#include <cstdint>
#include <iostream>
#include <span>
#include <utility>
#include <vector>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/count_engine.hpp"
#include "core/engine.hpp"
#include "core/initializer.hpp"
#include "core/metrics.hpp"
#include "core/protocol.hpp"
#include "experiments/session.hpp"
#include "experiments/sweep.hpp"
#include "graph/generators.hpp"
#include "graph/samplers.hpp"
#include "rng/splitmix64.hpp"
#include "rng/streams.hpp"
#include "theory/recursions.hpp"

namespace {

using namespace b3v;

/// The (k, keep-own?) pair the mean-field maps need; noisy rules get
/// no closed-form column (the q-colour maps are noiseless).
struct TheoryRule {
  unsigned k = 3;
  bool keep_own = false;
  bool known = true;
};

TheoryRule theory_rule_for(const core::Protocol& p) {
  if (p.noise > 0.0) return {0, false, false};
  if (p.kind == core::RuleKind::kPlurality) {
    return {p.k, p.ptie == core::PluralityTie::kKeepOwn, true};
  }
  return {p.effective_k(), p.effective_tie() == core::TieRule::kKeepOwn, true};
}

/// Mean-field consensus-time prediction on K_n: rounds until every
/// runner-up colour's mass drops below 1/(2n). -1 if the recursion
/// does not get there within the cap (e.g. a tie-locked start).
std::int64_t meanfield_rounds(const std::vector<double>& x0, unsigned q,
                              const TheoryRule& rule, std::size_t n,
                              int cap = 200) {
  if (!rule.known) return -1;
  const double target = 0.5 / static_cast<double>(n);
  std::vector<double> x = x0;
  for (int t = 0; t <= cap; ++t) {
    double runner_up = 0.0;
    for (unsigned c = 1; c < q; ++c) runner_up = std::max(runner_up, x[c]);
    if (runner_up <= target) return t;
    x = theory::plurality_drift(x, x, rule.k, rule.keep_own);
  }
  return -1;
}

struct LockOutcome {
  bool consensus = false;
  bool c0_winner = false;
  std::uint64_t rounds = 0;
  std::int64_t t_intra = -1;  // first round all blocks monochromatic
  bool locked = false;        // capped with distinct home majorities
};

/// One SBM run through the multi-opinion core::run, streaming
/// block_colour_stats via the observer (no re-run).
LockOutcome run_lock(const graph::CsrSampler& sampler, core::Opinions initial,
                     std::span<const core::BlockId> block_of, unsigned q,
                     const core::Protocol& protocol, std::uint64_t seed,
                     std::uint64_t max_rounds, core::MemoryPolicy mem_policy,
                     parallel::ThreadPool& pool) {
  LockOutcome out;
  core::MultiRunSpec spec;
  spec.protocol = protocol;
  spec.seed = seed;
  spec.max_rounds = max_rounds;
  spec.memory_policy = mem_policy;
  spec.observer = [&](std::uint64_t t,
                      std::span<const core::OpinionValue> state,
                      std::span<const std::uint64_t>) {
    if (out.t_intra < 0 &&
        core::block_colour_stats(state, block_of, q, q)
            .intra_block_consensus()) {
      out.t_intra = static_cast<std::int64_t>(t);
    }
    return true;
  };
  const auto result = core::run(sampler, std::move(initial), spec, pool);
  out.consensus = result.consensus;
  out.rounds = result.rounds;
  out.c0_winner = result.consensus && result.winner == 0;
  if (!out.consensus) {
    const auto stats =
        core::block_colour_stats(result.final_state, block_of, q, q);
    // Every block majority-holding its HOME colour already implies the
    // dominants are pairwise distinct.
    bool home = true;
    for (unsigned b = 0; b < q; ++b) {
      home &= stats.dominant_colour(b) == static_cast<core::OpinionValue>(b);
    }
    out.locked = home;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  experiments::Session session(argc, argv, "exp_plurality");
  const auto& ctx = session.config();
  auto& pool = session.pool();
  std::cout << "E16: plurality (q-colour) voting — K_n consensus and k-block "
               "SBM lock\n"
            << "prediction: planted advantage amplified on K_n per the "
               "simplex recursion;\n"
            << "on the q-block SBM a lock threshold in lambda (s_lock_mf > 0 "
               "above it)\n\n";

  const auto protocols = ctx.protocols_or(
      {core::plurality(3, 3), core::plurality(3, 3, core::PluralityTie::kKeepOwn)},
      core::kMaxOpinions);
  const std::size_t reps = ctx.rep_count(6);
  constexpr std::uint64_t kMaxRounds = 150;

  // ---------------- Part A: planted advantage on K_n ----------------
  const std::size_t n_complete = ctx.scaled(std::size_t{1} << 12);
  const graph::CompleteSampler complete(n_complete);
  analysis::Table kn_table(
      "E16a K_n plurality, n=" + std::to_string(n_complete) + ", " +
          std::to_string(reps) + " runs/cell, cap " +
          std::to_string(kMaxRounds),
      {"rule", "q", "adv", "c0_win_rate", "capped", "rounds_mean",
       "mf_rounds"});
  for (const core::Protocol& protocol : protocols) {
    const unsigned q = protocol.num_colours();
    for (const double adv : {0.02, 0.05, 0.1}) {
      std::vector<double> probs(q, (1.0 - (1.0 / q + adv)) / (q - 1.0));
      probs[0] = 1.0 / q + adv;
      std::uint64_t c0 = 0, capped = 0;
      analysis::OnlineStats rounds;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const std::uint64_t seed = rng::derive_stream(
            ctx.base_seed,
            0xE16A00 ^ (static_cast<std::uint64_t>(adv * 1e4) << 16) ^
                (static_cast<std::uint64_t>(q) << 8) ^ rep);
        core::MultiRunSpec spec;
        spec.protocol = protocol;
        spec.seed = seed;
        spec.max_rounds = kMaxRounds;
        spec.memory_policy = ctx.memory_policy;
        const auto result = core::run(
            complete,
            core::iid_multi(n_complete, probs, rng::derive_stream(seed, 0x316)),
            spec, pool);
        if (!result.consensus) {
          ++capped;
          continue;
        }
        rounds.add(static_cast<double>(result.rounds));
        c0 += result.winner == 0;
      }
      kn_table.add_row(
          {core::name(protocol), static_cast<std::int64_t>(q), adv,
           static_cast<double>(c0) / static_cast<double>(reps),
           static_cast<std::int64_t>(capped),
           rounds.count() == 0 ? -1.0 : rounds.mean(),
           meanfield_rounds(probs, q, theory_rule_for(protocol), n_complete)});
    }
  }
  session.emit(kn_table);

  // ------------- Part B: q-block SBM lambda phase sweep -------------
  // One block per colour; block 0 starts solid colour 0, every other
  // block holds its home colour except an eps-fraction of colour 0 —
  // the global bias whose survival IS the drift-stability criterion.
  constexpr double kEps = 0.1;
  analysis::Table sbm_table("E16b q-block SBM lock vs lambda",
                            {"rule", "q", "lambda", "p_in", "p_out",
                             "locked_rate", "c0_win_rate", "capped",
                             "rounds_mean", "t_intra_mean", "s_lock_mf"});
  for (const core::Protocol& protocol : protocols) {
    const unsigned q = protocol.num_colours();
    const std::size_t n = ctx.scaled(std::size_t{1} << 12, 32 * q);
    const std::uint32_t d = experiments::snap_sbm_degree(
        n,
        static_cast<std::uint32_t>(
            std::lround(std::pow(static_cast<double>(n), 0.7))),
        q);
    const auto lambdas = experiments::sbm_lambda_grid(n, d, 0.3, 0.9, 6, q);
    const auto block_of =
        graph::sbm_block_assignment(static_cast<graph::VertexId>(n), q);
    const TheoryRule rule = theory_rule_for(protocol);
    for (std::size_t li = 0; li < lambdas.size(); ++li) {
      const auto& pt = lambdas[li];
      const graph::Graph g = graph::k_block_sbm(
          static_cast<graph::VertexId>(n), q, pt.p_in, pt.p_out,
          rng::derive_stream(ctx.base_seed, 0xE16B00 + (q << 8) + li));
      const graph::CsrSampler sampler(g);
      std::vector<std::vector<double>> start(q, std::vector<double>(q, 0.0));
      for (unsigned b = 0; b < q; ++b) {
        start[b][b] = b == 0 ? 1.0 : 1.0 - kEps;
        start[b][0] += b == 0 ? 0.0 : kEps;
      }
      std::uint64_t locked = 0, c0 = 0, capped = 0;
      analysis::OnlineStats rounds, t_intra;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const std::uint64_t seed = rng::derive_stream(
            ctx.base_seed, (li << 24) ^ (static_cast<std::uint64_t>(q) << 16) ^
                               (rep << 1) ^
                               (protocol.ptie == core::PluralityTie::kKeepOwn));
        auto init =
            core::block_multi(block_of, start, rng::derive_stream(seed, rng::kStreamBlockPlacement));
        const auto out = run_lock(sampler, std::move(init), block_of, q,
                                  protocol, seed, kMaxRounds,
                                  ctx.memory_policy, pool);
        if (out.consensus) {
          rounds.add(static_cast<double>(out.rounds));
          c0 += out.c0_winner;
        } else {
          ++capped;
          locked += out.locked;
        }
        if (out.t_intra >= 0) t_intra.add(static_cast<double>(out.t_intra));
      }
      const auto rate = [&](std::uint64_t c) {
        return static_cast<double>(c) / static_cast<double>(reps);
      };
      sbm_table.add_row(
          {core::name(protocol), static_cast<std::int64_t>(q), pt.lambda,
           pt.p_in, pt.p_out, rate(locked), rate(c0),
           static_cast<std::int64_t>(capped),
           rounds.count() == 0 ? -1.0 : rounds.mean(),
           t_intra.count() == 0 ? -1.0 : t_intra.mean(),
           rule.known
               ? theory::sbm_plurality_locked_overlap(pt.lambda, q, rule.k,
                                                      rule.keep_own)
               : std::nan("")});
    }
  }
  session.emit(sbm_table);

  // --------- Part C: count-space backend, n = 10^9 lambda sweep ---------
  // The annealed q-block model (graph::CountModel::sbm) shares Part B's
  // lambda parametrisation, and the count-space engine advances it in
  // O(q^2) binomial draws per round — so the lock phase picture extends
  // five orders of magnitude past any per-vertex run, at n where the
  // mean-field threshold prediction should be essentially sharp.
  const auto n_huge = static_cast<std::uint64_t>(
      ctx.scaled(std::size_t{1'000'000'000}));
  analysis::Table cs_table(
      "E16c count-space q-block SBM lock vs lambda, n=" +
          std::to_string(n_huge) + " (annealed model), " +
          std::to_string(reps) + " runs/cell",
      {"rule", "q", "lambda", "locked_rate", "c0_win_rate", "capped",
       "rounds_mean", "t_intra_mean", "s_lock_mf"});
  for (const core::Protocol& protocol : protocols) {
    const unsigned q = protocol.num_colours();
    if (protocol.kind == core::RuleKind::kPlurality &&
        (protocol.k > 16 || q > 16)) {
      continue;  // past the count chain's plurality enumeration guard
    }
    const TheoryRule rule = theory_rule_for(protocol);
    for (const double lambda : {0.3, 0.42, 0.54, 0.66, 0.78, 0.9}) {
      const graph::CountModel model =
          graph::CountModel::sbm(n_huge, q, lambda);
      std::uint64_t locked = 0, c0 = 0, capped = 0;
      analysis::OnlineStats rounds, t_intra;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        // Part B's start, written directly in counts (no 10^9-vertex
        // state): block 0 solid colour 0, block b > 0 holds 1 - eps of
        // its home colour and exactly eps of colour 0.
        std::vector<std::uint64_t> init(model.num_blocks() * q, 0);
        for (unsigned b = 0; b < q; ++b) {
          const std::uint64_t size = model.sizes[b];
          if (b == 0) {
            init[0] = size;
            continue;
          }
          const auto stray =
              static_cast<std::uint64_t>(kEps * static_cast<double>(size));
          init[b * q + 0] = stray;
          init[b * q + b] = size - stray;
        }
        core::CountRunSpec spec;
        spec.protocol = protocol;
        spec.seed = rng::derive_stream(
            ctx.base_seed,
            0xE16C00 ^ (static_cast<std::uint64_t>(lambda * 100) << 24) ^
                (static_cast<std::uint64_t>(q) << 16) ^ rep);
        spec.max_rounds = kMaxRounds;
        std::int64_t first_intra = -1;
        spec.observer = [&](std::uint64_t t,
                            std::span<const std::uint64_t> counts) {
          if (first_intra < 0) {
            bool mono = true;
            for (std::size_t i = 0; i < model.num_blocks() && mono; ++i) {
              bool hit = false;
              for (unsigned c = 0; c < q; ++c) {
                hit |= counts[i * q + c] == model.sizes[i];
              }
              mono &= hit;
            }
            if (mono) first_intra = static_cast<std::int64_t>(t);
          }
          return true;
        };
        const auto out = core::run_counts(model, std::move(init), spec);
        if (out.consensus) {
          rounds.add(static_cast<double>(out.rounds));
          c0 += out.winner == 0;
        } else {
          ++capped;
          bool home = true;
          for (unsigned b = 0; b < q && home; ++b) {
            std::uint64_t best = 0;
            unsigned arg = 0;
            for (unsigned c = 0; c < q; ++c) {
              if (out.block_counts[b * q + c] > best) {
                best = out.block_counts[b * q + c];
                arg = c;
              }
            }
            home &= arg == b;
          }
          locked += home;
        }
        if (first_intra >= 0) t_intra.add(static_cast<double>(first_intra));
      }
      const auto rate = [&](std::uint64_t c) {
        return static_cast<double>(c) / static_cast<double>(reps);
      };
      cs_table.add_row(
          {core::name(protocol), static_cast<std::int64_t>(q), lambda,
           rate(locked), rate(c0), static_cast<std::int64_t>(capped),
           rounds.count() == 0 ? -1.0 : rounds.mean(),
           t_intra.count() == 0 ? -1.0 : t_intra.mean(),
           rule.known
               ? theory::sbm_plurality_locked_overlap(lambda, q, rule.k,
                                                      rule.keep_own)
               : std::nan("")});
    }
  }
  session.emit(cs_table);
  std::cout
      << "Expected shape: E16a win rates ~ 1 with rounds tracking mf_rounds\n"
      << "(larger adv, fewer rounds; keep-own ties only matter near a tied\n"
      << "start). E16b: for lambda with s_lock_mf = 0 the biased colour 0\n"
      << "sweeps every block (c0_win_rate ~ 1); once s_lock_mf > 0 the\n"
      << "locked_rate jumps towards 1 — each block freezes on its home\n"
      << "colour and t_intra_mean stays -1 when the locked equilibrium\n"
      << "keeps straggler colours in every block. E16c reproduces the\n"
      << "same transition on the annealed model at n = 10^9, where the\n"
      << "lock boundary should coincide with s_lock_mf > 0 exactly.\n";
  return session.finish();
}
