// E9 — the minimum-degree hypothesis d = n^Omega(1/log log n).
//
// Runs the identical protocol at (nearly) identical n on families above
// and below the threshold:
//   above: circulant with d = n^0.7, d = n^0.4;
//   near:  d = polylog (circulant with d = log^2 n);
//   below: hypercube (d = log2 n), torus (d = 4), cycle (d = 2).
// Above the threshold consensus arrives in O(log log n) rounds; below,
// convergence slows dramatically and/or the majority guarantee degrades.
#include <cmath>
#include <iostream>

#include "analysis/table.hpp"
#include "core/engine.hpp"
#include "core/initializer.hpp"
#include "experiments/runner.hpp"
#include "experiments/session.hpp"
#include "experiments/sweep.hpp"
#include "graph/samplers.hpp"
#include "rng/splitmix64.hpp"
#include "rng/streams.hpp"

namespace {

using namespace b3v;

template <graph::NeighborSampler S>
void run_family(const std::string& name, const S& sampler, double delta,
                std::size_t reps, std::uint64_t cap,
                const experiments::ExperimentConfig& ctx,
                parallel::ThreadPool& pool, analysis::Table& table) {
  const std::size_t n = sampler.num_vertices();
  const auto agg = experiments::aggregate_runs(
      reps, rng::derive_stream(ctx.base_seed, std::hash<std::string>{}(name)),
      [&](std::uint64_t seed) {
        core::RunSpec spec;
        spec.protocol = core::best_of(3);
        spec.seed = seed;
        spec.max_rounds = cap;
        core::Opinions init = core::iid_bernoulli(
            n, 0.5 - delta, rng::derive_stream(seed, rng::kStreamInitialPlacement));
        return core::run(sampler, std::move(init), spec, pool);
      });
  table.add_row({std::string(name), static_cast<std::int64_t>(n),
                 static_cast<std::int64_t>(sampler.degree(0)),
                 static_cast<std::int64_t>(reps), agg.rounds.mean(),
                 agg.rounds.max(), agg.red_win_rate(),
                 static_cast<std::int64_t>(agg.no_consensus)});
}

}  // namespace

int main(int argc, char** argv) {
  experiments::Session session(argc, argv, "exp_degree_threshold");
  const auto& ctx = session.config();
  auto& pool = session.pool();
  std::cout << "E9: the degree threshold — same protocol, same n, varying d\n"
            << "paper: Theorem 1 needs min degree n^Omega(1/log log n)\n\n";

  // n is the largest power of two within the scaled reference size (the
  // hypercube control needs a power of two; every family uses the same
  // n so the comparison isolates the degree).
  const auto scaled_n = ctx.scaled(1 << 14, 1 << 8);
  unsigned dim = 8;
  while ((std::size_t{1} << (dim + 1)) <= scaled_n) ++dim;
  const auto n = graph::VertexId{1} << dim;
  const double delta = 0.1;
  const std::size_t reps = ctx.rep_count(10);
  const std::uint64_t cap = 3000;

  analysis::Table table(
      "E9 consensus under varying degree, n=" + std::to_string(n) +
          " delta=" + std::to_string(delta) + " cap=" + std::to_string(cap),
      {"family", "n", "degree", "reps", "mean_rounds", "max_rounds",
       "red_win_rate", "capped_runs"});

  using experiments::GraphFamily;
  run_family("circulant d=n^0.7",
             graph::CirculantSampler::dense(
                 n, experiments::snap_degree(
                        GraphFamily::kCirculant, n,
                        static_cast<std::uint32_t>(std::pow(n, 0.7)))),
             delta, reps, cap, ctx, pool, table);
  run_family("circulant d=n^0.4",
             graph::CirculantSampler::dense(
                 n, experiments::snap_degree(
                        GraphFamily::kCirculant, n,
                        static_cast<std::uint32_t>(std::pow(n, 0.4)))),
             delta, reps, cap, ctx, pool, table);
  run_family("circulant d=log^2 n",
             graph::CirculantSampler::dense(
                 n, experiments::snap_degree(GraphFamily::kCirculant, n,
                                             dim * dim)),
             delta, reps, cap, ctx, pool, table);
  const std::uint32_t d48 =
      experiments::snap_degree(GraphFamily::kRandomRegular, n, 48);
  const graph::Graph rr48 = graph::random_regular(
      n, d48, rng::derive_stream(ctx.base_seed, 48));
  run_family("random regular d=48", graph::CsrSampler(rr48), delta, reps, cap,
             ctx, pool, table);
  const std::uint32_t d16 =
      experiments::snap_degree(GraphFamily::kRandomRegular, n, 16);
  const graph::Graph rr16 = graph::random_regular(
      n, d16, rng::derive_stream(ctx.base_seed, 16));
  run_family("random regular d=16", graph::CsrSampler(rr16), delta, reps, cap,
             ctx, pool, table);
  run_family("hypercube d=log2 n", graph::HypercubeSampler(dim), delta, reps,
             cap, ctx, pool, table);
  const auto side = graph::VertexId{1} << (dim / 2);
  run_family("torus d=4",
             graph::TorusSampler(side, n / side), delta, reps, cap, ctx, pool,
             table);
  run_family("circulant d=2 (cycle)",
             graph::CirculantSampler(n, {1}), delta, reps, cap, ctx, pool,
             table);
  session.emit(table);

  std::cout
      << "Expected shape: the dense circulant rows finish in <= ~10 rounds\n"
      << "with red winning every run. Random regular graphs (expanders) stay\n"
      << "fast even at d = 16 — consistent with the expansion-based results\n"
      << "of [5] — while the GEOMETRIC low-degree families degrade: the\n"
      << "d=n^0.4 / d=log^2 n circulants can freeze into metastable blue\n"
      << "stripes wider than their bandwidth (note N4), and torus/cycle\n"
      << "(constant degree) hit the cap or lose the majority guarantee.\n"
      << "The paper's min-degree hypothesis is what rules such geometric\n"
      << "families in/out without assuming expansion.\n";
  return session.finish();
}
