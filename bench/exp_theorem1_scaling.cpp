// E1 — Theorem 1, the headline claim: on dense graphs (min degree
// d = n^alpha) with i.i.d. Bernoulli(1/2 - delta) opinions, Best-of-3
// reaches consensus on the initial majority in
// O(log log n) + O(log 1/delta) rounds, w.h.p.
//
// This binary sweeps n at fixed delta = 0.1 and alpha = 0.7 over two
// dense families (circulant regular, materialised only implicitly; and
// Erdos-Renyi G(n, p) with p = n^{alpha-1}), reports the mean consensus
// time with 95% CIs and the Red (majority) win rate, and fits the mean
// time against log2 log2 n and against log2 n. The paper predicts the
// loglog fit to be the straight one.
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/regression.hpp"
#include "analysis/table.hpp"
#include "core/engine.hpp"
#include "core/initializer.hpp"
#include "experiments/runner.hpp"
#include "experiments/session.hpp"
#include "experiments/sweep.hpp"
#include "graph/generators.hpp"
#include "graph/samplers.hpp"
#include "rng/splitmix64.hpp"
#include "rng/streams.hpp"
#include "theory/recursions.hpp"

namespace {

using namespace b3v;

struct Row {
  std::size_t n;
  std::uint32_t d;
  experiments::ConsensusAggregate agg;
};

Row run_circulant(std::size_t n, double alpha, double delta, std::size_t reps,
                  std::uint64_t base_seed, parallel::ThreadPool& pool) {
  const std::uint32_t d = experiments::snap_degree(
      experiments::GraphFamily::kCirculant, n,
      static_cast<std::uint32_t>(std::pow(static_cast<double>(n), alpha)));
  const graph::CirculantSampler sampler =
      graph::CirculantSampler::dense(static_cast<graph::VertexId>(n), d);
  auto agg = experiments::aggregate_runs(
      reps, base_seed, [&](std::uint64_t seed) {
        core::RunSpec spec;
        spec.protocol = core::best_of(3);
        spec.seed = seed;
        spec.max_rounds = 500;
        core::Opinions init = core::iid_bernoulli(
            n, 0.5 - delta, rng::derive_stream(seed, rng::kStreamInitialPlacement));
        return core::run(sampler, std::move(init), spec, pool);
      });
  return {n, d, std::move(agg)};
}

Row run_gnp(std::size_t n, double alpha, double delta, std::size_t reps,
            std::uint64_t base_seed, parallel::ThreadPool& pool) {
  const double p = std::pow(static_cast<double>(n), alpha - 1.0);
  const graph::Graph g = graph::erdos_renyi_gnp(
      static_cast<graph::VertexId>(n), p, rng::derive_stream(base_seed, n));
  auto agg = experiments::aggregate_runs(
      reps, base_seed, [&](std::uint64_t seed) {
        return experiments::theorem1_run(g, delta, seed, pool, 500);
      });
  return {n, g.min_degree(), std::move(agg)};
}

void fit_and_report(const std::vector<Row>& rows, const std::string& family) {
  if (rows.size() < 3) {
    std::cout << family
              << ": sweep too short for a fit at this scale (need >= 3 sizes)\n";
    return;
  }
  std::vector<double> loglog, logn, time;
  for (const auto& row : rows) {
    const double l2 = std::log2(static_cast<double>(row.n));
    loglog.push_back(std::log2(l2));
    logn.push_back(l2);
    time.push_back(row.agg.rounds.mean());
  }
  const auto fit_ll = analysis::fit_line(loglog, time);
  const auto fit_ln = analysis::fit_line(logn, time);
  std::cout << family << ": T vs log2 log2 n: slope=" << fit_ll.slope
            << " R^2=" << fit_ll.r_squared
            << " | T vs log2 n: slope=" << fit_ln.slope
            << " R^2=" << fit_ln.r_squared << "\n"
            << "  (paper: T = O(log log n). Over n = 2^10..2^17, log2 log2 n "
               "moves only 3.3 -> 4.1,\n   so the paper's claim shows up as "
               "NEAR-FLAT times — a log n law would instead\n   grow by "
               "~8 rounds across the sweep, and the log2-n slope column rules "
               "that out.)\n";
}

void sweep(const std::string& family, double alpha, double delta,
           experiments::Session& session, bool circulant) {
  const auto& ctx = session.config();
  auto& pool = session.pool();
  analysis::Table table(
      "E1 [" + family + "] consensus time vs n  (alpha=" + std::to_string(alpha) +
          ", delta=" + std::to_string(delta) + ")",
      {"n", "min_deg", "reps", "mean_rounds", "ci95", "max_rounds",
       "red_win_rate", "no_consensus", "pred_loglog"});
  const std::size_t reps = ctx.rep_count(20);
  std::vector<Row> rows;
  for (const std::size_t n : experiments::size_grid(ctx, 1 << 10, 1 << 17)) {
    const std::uint64_t base_seed = rng::derive_stream(ctx.base_seed, n * 31 + circulant);
    Row row = circulant ? run_circulant(n, alpha, delta, reps, base_seed, pool)
                        : run_gnp(n, alpha, delta, reps, base_seed, pool);
    const auto pred = theory::theorem1_prediction(static_cast<double>(n), alpha, delta);
    table.add_row({static_cast<std::int64_t>(row.n),
                   static_cast<std::int64_t>(row.d),
                   static_cast<std::int64_t>(reps),
                   row.agg.rounds.mean(),
                   row.agg.rounds.ci95_half_width(),
                   row.agg.rounds.max(),
                   row.agg.red_win_rate(),
                   static_cast<std::int64_t>(row.agg.no_consensus),
                   static_cast<std::int64_t>(pred.total)});
    rows.push_back(std::move(row));
  }
  session.emit(table);
  fit_and_report(rows, family);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  experiments::Session session(argc, argv, "exp_theorem1_scaling");
  const auto& ctx = session.config();
  auto& pool = session.pool();
  std::cout << "E1: Theorem 1 scaling — consensus time vs n on dense graphs\n"
            << "paper claim: T = O(log log n) + O(log 1/delta), Red wins w.h.p.\n\n";
  sweep("circulant d=n^0.7", 0.7, 0.1, session, /*circulant=*/true);
  // G(n,p) capped at 2^15 to keep the default run laptop-sized; the
  // implicit circulant carries the large-n end of the sweep.
  analysis::Table table("E1 [gnp p=n^-0.3] consensus time vs n (delta=0.1)",
                        {"n", "min_deg", "reps", "mean_rounds", "ci95",
                         "red_win_rate", "no_consensus"});
  const std::size_t reps = ctx.rep_count(10);
  std::vector<Row> rows;
  for (const std::size_t n : experiments::size_grid(ctx, 1 << 10, 1 << 15)) {
    const std::uint64_t base_seed = b3v::rng::derive_stream(ctx.base_seed, n);
    Row row = run_gnp(n, 0.7, 0.1, reps, base_seed, pool);
    table.add_row({static_cast<std::int64_t>(row.n),
                   static_cast<std::int64_t>(row.d),
                   static_cast<std::int64_t>(reps),
                   row.agg.rounds.mean(),
                   row.agg.rounds.ci95_half_width(),
                   row.agg.red_win_rate(),
                   static_cast<std::int64_t>(row.agg.no_consensus)});
    rows.push_back(std::move(row));
  }
  session.emit(table);
  fit_and_report(rows, "gnp");
  return session.finish();
}
