// F1 — reconstruction of Figure 1: the Sprinkling process on a 2-level
// voting-DAG.
//
// Builds a small DAG with genuine collisions, walks the reveal order
// exactly as Section 3 prescribes (vertices left to right, slots in
// order), prints the before/after structure as ASCII and Graphviz DOT,
// and verifies the coupling on this instance.
#include <iostream>

#include "analysis/table.hpp"
#include "core/initializer.hpp"
#include "experiments/session.hpp"
#include "graph/samplers.hpp"
#include "votingdag/coloring.hpp"
#include "votingdag/dot_export.hpp"
#include "votingdag/sprinkling.hpp"

int main(int argc, char** argv) {
  using namespace b3v;
  experiments::Session session(argc, argv, "fig1_sprinkling_demo");
  std::cout << "F1: Figure 1 reconstruction — the Sprinkling process\n\n";

  // A 2-level DAG over a small complete graph; the seed is chosen so
  // that level 1 exhibits collisions like the paper's figure. This is a
  // fixed-size illustration: B3V_SCALE deliberately does not apply.
  const graph::CompleteSampler sampler(8);
  votingdag::VotingDag dag;
  std::uint64_t chosen_seed = 0;
  for (std::uint64_t seed = 1; seed < 500; ++seed) {
    dag = votingdag::build_voting_dag(sampler, 0, 2, seed);
    if (dag.collisions_at_level(1) >= 2 && dag.level(1).size() == 3) {
      chosen_seed = seed;
      break;
    }
  }
  std::cout << "seed " << chosen_seed << " produces:\n"
            << votingdag::dag_summary(dag) << "\n";

  std::cout << "H (original voting-DAG, level 2 = root (v0,2)):\n";
  for (int t = dag.root_level(); t >= 0; --t) {
    std::cout << "  level " << t << ":";
    for (const auto& node : dag.level(t)) std::cout << "  v" << node.vertex;
    std::cout << '\n';
  }
  std::cout << "  edges (root->level1->level0):\n";
  for (int t = dag.root_level(); t >= 1; --t) {
    for (const auto& node : dag.level(t)) {
      std::cout << "    (v" << node.vertex << ",t" << t << ") -> ";
      for (const auto c : node.child) {
        std::cout << "v" << dag.level(t - 1)[static_cast<std::size_t>(c)].vertex
                  << ' ';
      }
      std::cout << '\n';
    }
  }

  const auto sprinkled = votingdag::sprinkle(dag, 1);
  std::cout << "\nH' after sprinkling level 1 (collisions redirected to "
               "artificial always-Blue squares):\n";
  for (std::size_t i = 0; i < dag.level(1).size(); ++i) {
    std::cout << "    (v" << dag.level(1)[i].vertex << ",t1) -> ";
    for (const auto c : sprinkled.children(1, i)) {
      if (c == votingdag::kArtificialBlue) {
        std::cout << "[B] ";
      } else {
        std::cout << "v" << dag.level(0)[static_cast<std::size_t>(c)].vertex
                  << ' ';
      }
    }
    std::cout << '\n';
  }
  std::cout << "  redirected edges at level 1: "
            << sprinkled.redirects_at_level(1) << "\n"
            << "  collision-free below cut: "
            << (sprinkled.collision_free_below_cut() ? "yes" : "no") << "\n\n";

  const core::Opinions leaves =
      core::iid_bernoulli(dag.level(0).size(), 0.4, 7);
  const bool coupling_holds =
      votingdag::verify_coupling(dag, sprinkled, leaves);
  std::cout << "coupling X_H <= X_H' on this instance: "
            << (coupling_holds ? "holds" : "VIOLATED") << "\n\n";

  // Structured summary (for --out): the instance Figure 1 reproduces.
  analysis::Table summary("F1 sprinkling instance, K_8, T=2, cut at level 1",
                          {"level", "width", "collisions", "redirects"});
  for (int t = dag.root_level(); t >= 0; --t) {
    summary.add_row({static_cast<std::int64_t>(t),
                     static_cast<std::int64_t>(dag.level(t).size()),
                     static_cast<std::int64_t>(
                         t >= 1 ? dag.collisions_at_level(t) : 0),
                     static_cast<std::int64_t>(
                         t == 1 ? sprinkled.redirects_at_level(t) : 0)});
  }
  session.emit(summary);

  std::cout << "--- Graphviz DOT (H) ---\n"
            << votingdag::dag_to_dot(dag, leaves)
            << "\n--- Graphviz DOT (H') ---\n"
            << votingdag::sprinkled_to_dot(sprinkled, leaves)
            << "\n(render with `dot -Tpng` to reproduce Figure 1's layout)\n";
  return session.finish();
}
