// E14 — SBM phase transition: Best-of-3 vs two-choices on the
// symmetric two-block stochastic block model (Shimizu & Shiraga,
// arXiv:1907.12212, made empirical).
//
// The lambda axis (lambda = (p_in - p_out)/(p_in + p_out)) sweeps
// community strength at FIXED expected degree (sbm_lambda_grid), the
// bias axis sweeps the initial red majority. Starts are
// community-aligned: block 0 is blue's home (blue w.p. 1 - 2*bias),
// block 1 starts all red, so the global blue share is 1/2 - bias.
// Mean-field (theory::sbm_* and docs/THEORY.md) predicts a lock
// threshold lambda*: below it the global (red) majority wins; above
// it the run freezes into the community-locked state (intra-block
// consensus, opposite colours, no global consensus). The operative
// threshold is where the locked point survives global drift —
// lambda* = 3/4 for Best-of-3 but (sqrt 5 - 1)/2 ~ 0.618 for
// two-choices — so in the window (0.618, 0.75) Best-of-3 still breaks
// communities that lock two-choices.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <span>
#include <utility>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/count_engine.hpp"
#include "core/engine.hpp"
#include "core/initializer.hpp"
#include "core/metrics.hpp"
#include "core/protocol.hpp"
#include "experiments/session.hpp"
#include "experiments/sweep.hpp"
#include "graph/generators.hpp"
#include "graph/samplers.hpp"
#include "rng/splitmix64.hpp"
#include "rng/streams.hpp"
#include "theory/recursions.hpp"

namespace {

using namespace b3v;

struct CommunityOutcome {
  bool consensus = false;
  bool red_winner = false;
  std::uint64_t rounds = 0;
  std::int64_t t_intra = -1;  // first round with intra-block consensus
  bool locked = false;        // capped with opposite block majorities
  double xdis_final = 0.0;    // final cross-block disagreement
};

/// One community-structured run through core::run, streaming
/// core::block_stats via the observer hook (no re-run): the observer
/// scans each round only until the first intra-block consensus (the
/// pre-engine short-circuit); the final phase classification reads
/// result.final_state, which the engine moves out for free.
CommunityOutcome run_community(const graph::CsrSampler& sampler,
                               core::Opinions initial,
                               std::span<const core::BlockId> block_of,
                               const core::Protocol& protocol,
                               std::uint64_t seed, std::uint64_t max_rounds,
                               core::MemoryPolicy mem_policy,
                               parallel::ThreadPool& pool) {
  CommunityOutcome out;
  core::RunSpec spec;
  spec.protocol = protocol;
  spec.seed = seed;
  spec.max_rounds = max_rounds;
  spec.memory_policy = mem_policy;
  spec.observer = [&](std::uint64_t t,
                      std::span<const core::OpinionValue> state,
                      std::uint64_t) {
    if (out.t_intra < 0 &&
        core::block_stats(state, block_of, 2).intra_block_consensus()) {
      out.t_intra = static_cast<std::int64_t>(t);
    }
    return true;
  };
  const auto result = core::run(sampler, std::move(initial), spec, pool);
  out.consensus = result.consensus;
  out.rounds = result.rounds;
  out.red_winner = result.consensus && result.final_blue == 0;
  const auto stats = core::block_stats(result.final_state, block_of, 2);
  out.xdis_final = stats.cross_block_disagreement();
  out.locked = !out.consensus &&
               stats.magnetization(0) * stats.magnetization(1) < 0.0;
  return out;
}

/// The m_lock_mf theory column knows the two NOISELESS rules E14
/// analyses; any other --rule= protocol (different k, or a +noise=
/// variant, whose locked point the closed forms don't model) gets NaN
/// rather than a wrong prediction.
double locked_magnetization_for(const core::Protocol& p, double lambda) {
  if (p.noise > 0.0) return std::nan("");
  if (core::is_two_choices_equivalent(p)) {
    return theory::sbm_locked_magnetization(lambda, /*two_choices=*/true);
  }
  if (p == core::best_of(3)) {
    return theory::sbm_locked_magnetization(lambda, /*two_choices=*/false);
  }
  return std::nan("");
}

}  // namespace

int main(int argc, char** argv) {
  experiments::Session session(argc, argv, "exp_sbm_phase");
  const auto& ctx = session.config();
  auto& pool = session.pool();
  std::cout << "E14: SBM phase diagram — Best-of-3 vs two-choices over "
               "(lambda, bias)\n"
            << "prediction: majority wins below lambda*, community lock "
               "above\n"
            << "(lambda* = 3/4 for Best-of-3, (sqrt 5 - 1)/2 ~ 0.618 for "
               "two-choices)\n\n";

  const std::size_t n = ctx.scaled(std::size_t{1} << 13);
  const std::uint32_t d = experiments::snap_sbm_degree(
      n, static_cast<std::uint32_t>(
             std::lround(std::pow(static_cast<double>(n), 0.7))));
  const auto lambdas = experiments::sbm_lambda_grid(n, d, 0.2, 0.9, 8);
  const std::size_t reps = ctx.rep_count(8);
  constexpr std::uint64_t kMaxRounds = 150;
  const auto protocols =
      ctx.protocols_or({core::best_of(3), core::two_choices()});

  const std::vector<graph::VertexId> sizes{
      static_cast<graph::VertexId>(n / 2),
      static_cast<graph::VertexId>(n - n / 2)};
  const auto block_of = graph::sbm_block_assignment(sizes);

  analysis::Table table(
      "E14 two-block SBM, n=" + std::to_string(n) + ", expected degree d=" +
          std::to_string(d) + ", " + std::to_string(reps) + " runs/cell, cap " +
          std::to_string(kMaxRounds),
      {"rule", "lambda", "p_in", "p_out", "bias", "red_win_rate",
       "locked_rate", "capped", "rounds_mean", "t_intra_mean", "xdis_final",
       "m_lock_mf"});
  for (std::size_t li = 0; li < lambdas.size(); ++li) {
    const auto& pt = lambdas[li];
    const graph::Graph g = graph::two_block_sbm(
        static_cast<graph::VertexId>(n), pt.p_in, pt.p_out,
        rng::derive_stream(ctx.base_seed, 0xE14000 + li));
    const graph::CsrSampler sampler(g);
    for (const double bias : {0.02, 0.05, 0.1}) {
      for (const core::Protocol& protocol : protocols) {
        // Seed parity preserved from the pre-Protocol driver: the
        // low bit separates the two default rules' streams.
        const std::uint64_t rule_bit = core::is_two_choices_equivalent(protocol);
        std::uint64_t red = 0, locked = 0, capped = 0;
        analysis::OnlineStats rounds, t_intra, xdis;
        for (std::size_t rep = 0; rep < reps; ++rep) {
          const std::uint64_t seed = rng::derive_stream(
              ctx.base_seed, (li << 24) ^ (static_cast<std::uint64_t>(
                                               bias * 1e4) << 12) ^
                                 (rep << 1) ^ rule_bit);
          // Blue home block vs all-red block: global blue 1/2 - bias.
          const std::vector<double> p_blue{1.0 - 2.0 * bias, 0.0};
          auto init = core::block_bernoulli(block_of, p_blue,
                                            rng::derive_stream(seed, rng::kStreamBlockPlacement));
          const auto out =
              run_community(sampler, std::move(init), block_of, protocol,
                            seed, kMaxRounds, ctx.memory_policy, pool);
          if (out.consensus) {
            rounds.add(static_cast<double>(out.rounds));
            if (out.red_winner) ++red;
          } else {
            ++capped;
            if (out.locked) ++locked;
          }
          if (out.t_intra >= 0) t_intra.add(static_cast<double>(out.t_intra));
          xdis.add(out.xdis_final);
        }
        const auto rate = [&](std::uint64_t c) {
          return static_cast<double>(c) / static_cast<double>(reps);
        };
        // -1 marks "no run got there" (0 is a valid round index).
        table.add_row(
            {core::name(protocol), pt.lambda, pt.p_in, pt.p_out, bias,
             rate(red), rate(locked), static_cast<std::int64_t>(capped),
             rounds.count() == 0 ? -1.0 : rounds.mean(),
             t_intra.count() == 0 ? -1.0 : t_intra.mean(), xdis.mean(),
             locked_magnetization_for(protocol, pt.lambda)});
      }
    }
  }
  session.emit(table);

  // Count-space coda: the same two-block lock story on the ANNEALED
  // model at n = 10^9, where the count-space engine advances a round in
  // four binomial draws. At this n the locked magnetization should sit
  // on top of the mean-field fixed point m_lock_mf — the quenched table
  // above can only approach it through graph noise.
  const auto n_huge = static_cast<std::uint64_t>(
      ctx.scaled(std::size_t{1'000'000'000}));
  constexpr double kBiasHuge = 0.05;
  analysis::Table cs_table(
      "E14c count-space two-block SBM (annealed), n=" +
          std::to_string(n_huge) + ", bias=" + std::to_string(kBiasHuge) +
          ", " + std::to_string(reps) + " runs/cell",
      {"rule", "lambda", "red_win_rate", "locked_rate", "capped",
       "rounds_mean", "m_final", "m_lock_mf"});
  for (const double lambda : {0.2, 0.4, 0.55, 0.65, 0.7, 0.8, 0.9}) {
    const graph::CountModel model = graph::CountModel::sbm(n_huge, 2, lambda);
    for (const core::Protocol& protocol : protocols) {
      std::uint64_t red = 0, locked = 0, capped = 0;
      analysis::OnlineStats rounds, m_final;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        // The quenched start, in expectation-exact counts: block 0 is
        // blue's home (blue share 1 - 2 bias), block 1 all red.
        const std::uint64_t s0 = model.sizes[0], s1 = model.sizes[1];
        const auto b0_blue = static_cast<std::uint64_t>(
            (1.0 - 2.0 * kBiasHuge) * static_cast<double>(s0));
        core::CountRunSpec spec;
        spec.protocol = protocol;
        spec.seed = rng::derive_stream(
            ctx.base_seed,
            0xE14C00 ^ (static_cast<std::uint64_t>(lambda * 100) << 24) ^
                (static_cast<std::uint64_t>(
                     core::is_two_choices_equivalent(protocol))
                 << 16) ^
                rep);
        spec.max_rounds = kMaxRounds;
        const auto out = core::run_counts(
            model, {s0 - b0_blue, b0_blue, s1, 0}, spec);
        if (out.consensus) {
          rounds.add(static_cast<double>(out.rounds));
          red += out.winner == 0;
        } else {
          ++capped;
          // Per-block blue share minus 1/2: averaging the two absolute
          // deviations gives (a - b)/2, sbm_locked_magnetization's m*.
          const double m0 = static_cast<double>(out.block_counts[1]) /
                                static_cast<double>(s0) -
                            0.5;
          const double m1 = static_cast<double>(out.block_counts[3]) /
                                static_cast<double>(s1) -
                            0.5;
          locked += m0 * m1 < 0.0;
          m_final.add(0.5 * (std::abs(m0) + std::abs(m1)));
        }
      }
      const auto rate = [&](std::uint64_t c) {
        return static_cast<double>(c) / static_cast<double>(reps);
      };
      cs_table.add_row(
          {core::name(protocol), lambda, rate(red), rate(locked),
           static_cast<std::int64_t>(capped),
           rounds.count() == 0 ? -1.0 : rounds.mean(),
           m_final.count() == 0 ? -1.0 : m_final.mean(),
           locked_magnetization_for(protocol, lambda)});
    }
  }
  session.emit(cs_table);
  std::cout
      << "Expected shape: for lambda well below the rule's lambda* "
         "(m_lock_mf = 0)\n"
      << "the blocks mix and red_win_rate ~ 1 (the global majority, faster "
         "at\n"
      << "larger bias); above lambda* locked_rate ~ 1 with xdis_final ~ 1/2 "
         "+\n"
      << "2*m_lock_mf^2. Between 0.618 and 3/4 the rules split: two_choices\n"
      << "locks while best_of_3 still delivers the majority. t_intra_mean "
         "is\n"
      << "-1 where no run reached strictly monochromatic blocks — the "
         "locked\n"
      << "equilibrium keeps a 1 - (1/2 + m_lock_mf) straggler fraction per "
         "block.\n"
      << "Finite-n caveat: lock is metastable — escape is exponentially "
         "slow,\n"
      << "so within the round cap it reads as locked (cf. note N4's "
         "stripes).\n";
  return session.finish();
}
