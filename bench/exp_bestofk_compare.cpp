// E7 — Best-of-k comparison (the introduction's related-work table,
// [2][4][8][1] made empirical).
//
//   k = 1: voter model — consensus in Theta(n) rounds on K_n, winner
//          proportional to initial share (majority NOT amplified);
//   k = 2: with random ties — fast, comparable to k = 3;
//   k = 3: the paper's protocol — O(log log n) + O(log 1/delta);
//   k = 5: faster contraction still, the regime of [1].
#include <cmath>
#include <iostream>

#include "analysis/table.hpp"
#include "core/engine.hpp"
#include "core/initializer.hpp"
#include "core/protocol.hpp"
#include "experiments/runner.hpp"
#include "experiments/session.hpp"
#include "experiments/sweep.hpp"
#include "graph/samplers.hpp"
#include "rng/splitmix64.hpp"
#include "rng/streams.hpp"
#include "theory/binomial.hpp"

int main(int argc, char** argv) {
  using namespace b3v;
  experiments::Session session(argc, argv, "exp_bestofk_compare");
  const auto& ctx = session.config();
  auto& pool = session.pool();
  std::cout << "E7: Best-of-k comparison on dense graphs\n\n";

  const auto n = static_cast<graph::VertexId>(ctx.scaled(1 << 13));
  const std::size_t reps = ctx.rep_count(15);
  // Random regular: an expander w.h.p., the setting of [4]; avoids the
  // geometric stripe metastability of banded circulants (note N4). The
  // reference degree 64 is snapped to the family's feasible range at
  // the scaled n.
  const std::uint32_t d =
      experiments::snap_degree(experiments::GraphFamily::kRandomRegular, n, 64);
  const graph::Graph g =
      graph::random_regular(n, d, rng::derive_stream(ctx.base_seed, 0xE7));
  const graph::CsrSampler sampler(g);

  // The intro's whole related-work table is one list of Protocol
  // values; --rule= narrows it to a single member.
  const auto protocols = ctx.protocols_or(
      {core::voter(), core::best_of(2, core::TieRule::kRandom),
       core::best_of(2, core::TieRule::kKeepOwn), core::best_of(3),
       core::best_of(5), core::best_of(7)});

  for (const double delta : {0.1, 0.02}) {
    analysis::Table table(
        "E7 consensus time by k, random regular n=" + std::to_string(n) +
            " d=" + std::to_string(d) + " delta=" + std::to_string(delta),
        {"rule", "k", "reps", "mean_rounds", "ci95", "red_win_rate",
         "no_consensus(cap)", "meanfield_map(0.4)"});
    for (const core::Protocol& protocol : protocols) {
      const auto agg = experiments::aggregate_runs(
          reps,
          rng::derive_stream(ctx.base_seed,
                             protocol.k * 7919 +
                                 (protocol.tie == core::TieRule::kKeepOwn)),
          [&](std::uint64_t seed) {
            core::RunSpec spec;
            spec.protocol = protocol;
            spec.seed = seed;
            // Voter model needs Theta(n) rounds; cap to keep the run
            // laptop-sized and report the censoring.
            spec.max_rounds = protocol.k == 1 ? 2000 : 300;
            core::Opinions init = core::iid_bernoulli(
                n, 0.5 - delta, rng::derive_stream(seed, rng::kStreamInitialPlacement));
            return core::run(sampler, std::move(init), spec, pool);
          });
      // best_of_k_map is the NOISELESS drift map; a +noise= rule gets
      // NaN rather than a wrong reference (the noisy fixed point lives
      // in theory::noisy_best_of_three_map, E13's column).
      const double map04 =
          protocol.noise > 0.0
              ? std::nan("")
              : theory::best_of_k_map(0.4, protocol.k,
                                      protocol.tie == core::TieRule::kKeepOwn
                                          ? theory::EvenTie::kKeepOwn
                                          : theory::EvenTie::kRandom);
      table.add_row({core::name(protocol),
                     static_cast<std::int64_t>(protocol.k),
                     static_cast<std::int64_t>(reps), agg.rounds.mean(),
                     agg.rounds.ci95_half_width(), agg.red_win_rate(),
                     static_cast<std::int64_t>(agg.no_consensus), map04});
    }
    session.emit(table);
  }
  std::cout
      << "Expected shape (read with the meanfield_map(0.4) column):\n"
      << "  k=1 (voter): map = identity, no drift — hits the round cap; the\n"
      << "    winner is NOT majority-amplified (Theta(n) rounds needed).\n"
      << "  k=2 random ties: ALSO a drift-free martingale (b' = b^2 + b(1-b)\n"
      << "    = b) — hits the cap too. This is exactly why the 2-choices\n"
      << "    literature ([4],[8]) keeps the own opinion on ties:\n"
      << "  k=2 keep-own: map b^2(3-2b) — identical drift to Best-of-3 —\n"
      << "    doubly-logarithmic consensus.\n"
      << "  k=3: the paper's protocol, same map, one fewer message than\n"
      << "    2-choices needs state; k=5/7 contract faster still ([1]).\n";
  return session.finish();
}
