// Shared main() for every bench_* microbenchmark (replaces
// BENCHMARK_MAIN) adding one thing: artifact emission. When
// B3V_BENCH_JSON_DIR is set, the binary writes Google Benchmark JSON to
//   $B3V_BENCH_JSON_DIR/BENCH_<name>.json
// where <name> is the binary's stem without its "bench_" prefix
// (bench_step -> BENCH_step.json), alongside the normal console
// output. Explicit --benchmark_out= flags win over the environment.
// See docs/BENCHMARKING.md for the produce/compare workflow.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

namespace {

std::string binary_stem(const char* argv0) {
  std::string stem = argv0 != nullptr ? argv0 : "bench";
  const auto slash = stem.find_last_of('/');
  if (slash != std::string::npos) stem = stem.substr(slash + 1);
  if (stem.rfind("bench_", 0) == 0) stem = stem.substr(6);
  return stem;
}

bool has_out_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string format_flag = "--benchmark_out_format=json";
  const char* dir = std::getenv("B3V_BENCH_JSON_DIR");
  if (dir != nullptr && *dir != '\0' && !has_out_flag(argc, argv)) {
    out_flag = std::string("--benchmark_out=") + dir + "/BENCH_" +
               binary_stem(argc > 0 ? argv[0] : nullptr) + ".json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
