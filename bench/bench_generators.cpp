// M2 — graph generation throughput (edges/second).
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"

namespace {

using namespace b3v::graph;

void BM_Gnp(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const double p = 0.01;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const Graph g = erdos_renyi_gnp(n, p, seed++);
    benchmark::DoNotOptimize(g.num_edges());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(g.num_edges()));
  }
}
BENCHMARK(BM_Gnp)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

void BM_Gnm(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const EdgeId m = static_cast<EdgeId>(n) * 16;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const Graph g = erdos_renyi_gnm(n, m, seed++);
    benchmark::DoNotOptimize(g.num_edges());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(m));
  }
}
BENCHMARK(BM_Gnm)->Arg(1 << 12)->Arg(1 << 14);

void BM_DenseCirculant(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  for (auto _ : state) {
    const Graph g = dense_circulant(n, 256);
    benchmark::DoNotOptimize(g.num_edges());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(g.num_edges()));
  }
}
BENCHMARK(BM_DenseCirculant)->Arg(1 << 12)->Arg(1 << 14);

void BM_RandomRegular(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const auto d = static_cast<std::uint32_t>(state.range(1));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const Graph g = random_regular(n, d, seed++);
    benchmark::DoNotOptimize(g.num_edges());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(g.num_edges()));
  }
}
BENCHMARK(BM_RandomRegular)->Args({1 << 12, 8})->Args({1 << 12, 32});

void BM_ChungLu(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const auto weights = power_law_weights(n, 2.5, 8.0, 256.0);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const Graph g = chung_lu(weights, seed++);
    benchmark::DoNotOptimize(g.num_edges());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(g.num_edges()));
  }
}
BENCHMARK(BM_ChungLu)->Arg(1 << 12)->Arg(1 << 14);

void BM_Complete(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  for (auto _ : state) {
    const Graph g = complete(n);
    benchmark::DoNotOptimize(g.num_edges());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(g.num_edges()));
  }
}
BENCHMARK(BM_Complete)->Arg(1 << 11)->Arg(1 << 12);

}  // namespace

// main() is provided by bench_main.cpp (adds B3V_BENCH_JSON_DIR support).
