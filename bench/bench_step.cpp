// M1 — simulation step throughput: vertices/second of one synchronous
// Best-of-k round across samplers (implicit vs materialised — the
// DESIGN.md ablation), k values, and thread counts.
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/dynamics.hpp"
#include "core/initializer.hpp"
#include "core/packed.hpp"
#include "graph/generators.hpp"
#include "graph/samplers.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace b3v;

template <typename S>
void run_step_bench(benchmark::State& state, const S& sampler, unsigned k,
                    unsigned threads) {
  const std::size_t n = sampler.num_vertices();
  parallel::ThreadPool pool(threads);
  const core::Opinions init = core::iid_bernoulli(n, 0.4, 1);
  core::Opinions next(n);
  std::uint64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::step_best_of_k(
        sampler, init, next, k, core::TieRule::kRandom, 99, round++, pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_Step_CompleteImplicit(benchmark::State& state) {
  const graph::CompleteSampler sampler(
      static_cast<graph::VertexId>(state.range(0)));
  run_step_bench(state, sampler, 3, static_cast<unsigned>(state.range(1)));
}
BENCHMARK(BM_Step_CompleteImplicit)
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 4})
    ->Args({1 << 20, 4});

void BM_Step_CirculantImplicit(benchmark::State& state) {
  const auto n = static_cast<graph::VertexId>(state.range(0));
  const auto sampler = graph::CirculantSampler::dense(
      n, static_cast<std::uint32_t>(std::pow(n, 0.7)));
  run_step_bench(state, sampler, 3, static_cast<unsigned>(state.range(1)));
}
BENCHMARK(BM_Step_CirculantImplicit)->Args({1 << 16, 1})->Args({1 << 16, 4});

void BM_Step_CirculantCsr(benchmark::State& state) {
  // Same graph as the implicit variant, materialised: measures the cost
  // of CSR row indirection vs offset arithmetic.
  const auto n = static_cast<graph::VertexId>(state.range(0));
  const graph::Graph g =
      graph::dense_circulant(n, static_cast<std::uint32_t>(std::pow(n, 0.7)));
  const graph::CsrSampler sampler(g);
  run_step_bench(state, sampler, 3, static_cast<unsigned>(state.range(1)));
}
BENCHMARK(BM_Step_CirculantCsr)->Args({1 << 16, 1})->Args({1 << 16, 4});

void BM_Step_GnpCsr(benchmark::State& state) {
  const auto n = static_cast<graph::VertexId>(state.range(0));
  const graph::Graph g =
      graph::erdos_renyi_gnp(n, std::pow(n, -0.3), 5);
  const graph::CsrSampler sampler(g);
  run_step_bench(state, sampler, 3, static_cast<unsigned>(state.range(1)));
}
BENCHMARK(BM_Step_GnpCsr)->Args({1 << 15, 4});

void BM_Step_ByK(benchmark::State& state) {
  const graph::CompleteSampler sampler(1 << 16);
  run_step_bench(state, sampler, static_cast<unsigned>(state.range(0)), 4);
}
BENCHMARK(BM_Step_ByK)->Arg(1)->Arg(2)->Arg(3)->Arg(5)->Arg(9);

void BM_Step_PackedBits(benchmark::State& state) {
  // The DESIGN.md layout ablation: bit-packed state vs the byte kernel
  // (BM_Step_CompleteImplicit with the same n/threads is the baseline).
  const auto n = static_cast<graph::VertexId>(state.range(0));
  const graph::CompleteSampler sampler(n);
  parallel::ThreadPool pool(static_cast<unsigned>(state.range(1)));
  const core::Opinions init = core::iid_bernoulli(n, 0.4, 1);
  core::PackedOpinions cur{std::span<const core::OpinionValue>(init)};
  core::PackedOpinions next(n);
  std::uint64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::step_best_of_three_packed(
        sampler, cur, next, 99, round++, pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Step_PackedBits)
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 4})
    ->Args({1 << 20, 4});

}  // namespace

// main() is provided by bench_main.cpp (adds B3V_BENCH_JSON_DIR support).
