// M1 — simulation step throughput: vertices/second of one synchronous
// Best-of-k round across samplers (implicit vs materialised — the
// DESIGN.md ablation), k values, thread counts, and state widths
// (byte vs 1-bit vs 2/4-bit packed — the Representation ablation;
// items_per_second here is the rounds/sec-at-n table of
// docs/BENCHMARKING.md).
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "core/count_engine.hpp"
#include "core/dynamics.hpp"
#include "core/initializer.hpp"
#include "core/packed.hpp"
#include "core/plurality.hpp"
#include "core/protocol.hpp"
#include "graph/generators.hpp"
#include "graph/samplers.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace b3v;

template <typename S>
void run_step_bench(benchmark::State& state, const S& sampler, unsigned k,
                    unsigned threads) {
  const std::size_t n = sampler.num_vertices();
  parallel::ThreadPool pool(threads);
  const core::Opinions init = core::iid_bernoulli(n, 0.4, 1);
  core::Opinions next(n);
  std::uint64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::step_best_of_k(
        sampler, init, next, k, core::TieRule::kRandom, 99, round++, pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_Step_CompleteImplicit(benchmark::State& state) {
  const graph::CompleteSampler sampler(
      static_cast<graph::VertexId>(state.range(0)));
  run_step_bench(state, sampler, 3, static_cast<unsigned>(state.range(1)));
}
BENCHMARK(BM_Step_CompleteImplicit)
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 4})
    ->Args({1 << 20, 4});

void BM_Step_CirculantImplicit(benchmark::State& state) {
  const auto n = static_cast<graph::VertexId>(state.range(0));
  const auto sampler = graph::CirculantSampler::dense(
      n, static_cast<std::uint32_t>(std::pow(n, 0.7)));
  run_step_bench(state, sampler, 3, static_cast<unsigned>(state.range(1)));
}
BENCHMARK(BM_Step_CirculantImplicit)->Args({1 << 16, 1})->Args({1 << 16, 4});

void BM_Step_CirculantCsr(benchmark::State& state) {
  // Same graph as the implicit variant, materialised: measures the cost
  // of CSR row indirection vs offset arithmetic.
  const auto n = static_cast<graph::VertexId>(state.range(0));
  const graph::Graph g =
      graph::dense_circulant(n, static_cast<std::uint32_t>(std::pow(n, 0.7)));
  const graph::CsrSampler sampler(g);
  run_step_bench(state, sampler, 3, static_cast<unsigned>(state.range(1)));
}
BENCHMARK(BM_Step_CirculantCsr)->Args({1 << 16, 1})->Args({1 << 16, 4});

void BM_Step_GnpCsr(benchmark::State& state) {
  const auto n = static_cast<graph::VertexId>(state.range(0));
  const graph::Graph g =
      graph::erdos_renyi_gnp(n, std::pow(n, -0.3), 5);
  const graph::CsrSampler sampler(g);
  run_step_bench(state, sampler, 3, static_cast<unsigned>(state.range(1)));
}
BENCHMARK(BM_Step_GnpCsr)->Args({1 << 15, 4});

void BM_Step_ByK(benchmark::State& state) {
  const graph::CompleteSampler sampler(1 << 16);
  run_step_bench(state, sampler, static_cast<unsigned>(state.range(0)), 4);
}
BENCHMARK(BM_Step_ByK)->Arg(1)->Arg(2)->Arg(3)->Arg(5)->Arg(9);

void BM_Step_PackedBits(benchmark::State& state) {
  // The representation ablation: 1-bit state vs the byte kernel
  // (BM_Step_CompleteImplicit with the same n/threads is the baseline).
  const auto n = static_cast<graph::VertexId>(state.range(0));
  const graph::CompleteSampler sampler(n);
  parallel::ThreadPool pool(static_cast<unsigned>(state.range(1)));
  const core::Opinions init = core::iid_bernoulli(n, 0.4, 1);
  core::PackedOpinions cur{std::span<const core::OpinionValue>(init)};
  core::PackedOpinions next(n);
  const core::Protocol p = core::best_of(3);
  std::uint64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::step_protocol_packed(
        sampler, p, cur, next, 99, round++, pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Step_PackedBits)
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 4})
    ->Args({1 << 20, 4});

void BM_Step_LargeN(benchmark::State& state) {
  // The rounds/sec-at-large-n headline on the implicit complete graph.
  // Mode (range 1): 0 = byte batched kernel, 1 = 1-bit packed kernel,
  // 2 = the scalar per-vertex baseline (a fresh CounterRng per vertex
  // through next_opinion — the pre-batching hot path, kept as the
  // denominator of the batching speedup), 3 = the byte kernel with the
  // pass-1 prefetches disabled (the prefetch ablation: mode 0 minus
  // mode 3 is what hiding the state-load latency buys). n = 10^7 rows
  // land in the checked-in BENCHMARKING.md table.
  const auto n = static_cast<graph::VertexId>(state.range(0));
  const auto mode = static_cast<unsigned>(state.range(1));
  const auto threads = static_cast<unsigned>(state.range(2));
  const graph::CompleteSampler sampler(n);
  parallel::ThreadPool pool(threads);
  const core::Opinions init = core::iid_bernoulli(n, 0.4, 1);
  const core::Protocol p = core::best_of(3);
  std::uint64_t round = 0;
  core::detail::set_prefetch_enabled(mode != 3);
  if (mode == 1) {
    core::PackedOpinions cur{std::span<const core::OpinionValue>(init)};
    core::PackedOpinions next(n);
    for (auto _ : state) {
      benchmark::DoNotOptimize(core::step_protocol_packed(
          sampler, p, cur, next, 99, round++, pool));
      std::swap(cur, next);
    }
  } else if (mode == 2) {
    core::Opinions cur = init;
    core::Opinions next(n);
    for (auto _ : state) {
      const std::span<const core::OpinionValue> read(cur);
      std::uint64_t blue = 0;
      for (std::size_t v = 0; v < n; ++v) {
        next[v] = core::next_opinion(sampler, read,
                                     static_cast<graph::VertexId>(v), 3,
                                     core::TieRule::kRandom, 99, round);
        blue += next[v];
      }
      benchmark::DoNotOptimize(blue);
      ++round;
      cur.swap(next);
    }
  } else {
    core::Opinions cur = init;
    core::Opinions next(n);
    for (auto _ : state) {
      benchmark::DoNotOptimize(core::step_protocol(sampler, p, cur, next, 99,
                                                   round++, pool));
      cur.swap(next);
    }
  }
  core::detail::set_prefetch_enabled(true);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Step_LargeN)
    ->Args({10'000'000, 0, 1})
    ->Args({10'000'000, 1, 1})
    ->Args({10'000'000, 2, 1})
    ->Args({10'000'000, 3, 1})
    ->Args({10'000'000, 0, 4})
    ->Args({10'000'000, 3, 4})
    ->Args({10'000'000, 0, 8})
    ->Args({10'000'000, 3, 8})
    ->Unit(benchmark::kMillisecond);

void BM_Step_PluralityWidths(benchmark::State& state) {
  // q-colour plurality across state widths: 0 = byte, 2 = 2-bit
  // (q <= 4), 4 = 4-bit (q <= 16).
  const auto n = static_cast<graph::VertexId>(state.range(0));
  const auto q = static_cast<unsigned>(state.range(1));
  const auto width = static_cast<unsigned>(state.range(2));
  const graph::CompleteSampler sampler(n);
  parallel::ThreadPool pool(4);
  const core::Opinions init =
      core::iid_multi(n, std::vector<double>(q, 1.0 / q), 1);
  const core::Protocol p = core::plurality(3, q);
  std::uint64_t round = 0;
  const auto loop = [&](auto cur, auto next) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(core::step_plurality_packed(
          sampler, p, cur, next, 99, round++, pool));
      std::swap(cur, next);
    }
  };
  if (width == 2) {
    loop(core::PackedColours<2>{std::span<const core::OpinionValue>(init)},
         core::PackedColours<2>(n));
  } else if (width == 4) {
    loop(core::PackedColours<4>{std::span<const core::OpinionValue>(init)},
         core::PackedColours<4>(n));
  } else {
    core::Opinions cur = init;
    core::Opinions next(n);
    for (auto _ : state) {
      benchmark::DoNotOptimize(core::step_protocol_multi(
          sampler, p, cur, next, 99, round++, pool));
      cur.swap(next);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Step_PluralityWidths)
    ->Args({1 << 16, 4, 0})
    ->Args({1 << 16, 4, 2})
    ->Args({1 << 16, 16, 0})
    ->Args({1 << 16, 16, 4});

void BM_Step_CountSpace(benchmark::State& state) {
  // The count-space backend: one round is O(q * blocks) exact
  // binomial/multinomial draws, independent of n — these rows put the
  // n = 10^8 and 10^9 headline next to the per-vertex tables above
  // (items_per_second is simulated vertices/sec, same scale). Mode
  // (range 1): 0 = voter on K_n (2 binomial cells), 1 = 8-colour
  // plurality-of-1 on a 4-block model (32 multinomial cells). Both
  // rules are martingales, so the counts started at an interior point
  // stay interior across iterations and every draw does real BTRS work
  // instead of measuring an absorbed state.
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto mode = static_cast<unsigned>(state.range(1));
  const graph::CountModel model = mode == 0
                                      ? graph::CountModel::complete(n)
                                      : graph::CountModel::sbm(n, 4, 0.5);
  const core::Protocol protocol =
      mode == 0 ? core::best_of(1) : core::plurality(1, 8);
  const unsigned q = protocol.num_colours();
  std::vector<std::uint64_t> counts;
  for (const std::uint64_t s : model.sizes) {
    std::uint64_t left = s;
    for (unsigned c = 0; c + 1 < q; ++c) {
      const std::uint64_t share = s / q;
      counts.push_back(share);
      left -= share;
    }
    counts.push_back(left);
  }
  core::CountRunSpec spec;
  spec.protocol = protocol;
  spec.max_rounds = 1;
  spec.stop_at_consensus = false;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    spec.seed = seed++;  // fresh streams per iteration, counts carry over
    auto result = core::run_counts(model, std::move(counts), spec);
    counts = std::move(result.block_counts);
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Step_CountSpace)
    ->Args({100'000'000, 0})
    ->Args({1'000'000'000, 0})
    ->Args({100'000'000, 1})
    ->Args({1'000'000'000, 1});

}  // namespace

// main() is provided by bench_main.cpp (adds B3V_BENCH_JSON_DIR support).
